// Package comm is the message-passing library of the simulated T Series:
// typed point-to-point messages over the hypercube sublinks with
// store-and-forward e-cube routing, plus the standard hypercube
// collectives (broadcast, reduce, all-reduce, gather, scatter, barrier,
// all-to-all) built by recursive doubling and binomial trees — the
// communication patterns the paper's Figure 3 mappings exist to serve.
package comm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tseries/internal/cube"
	"tseries/internal/fparith"
	"tseries/internal/link"
	"tseries/internal/node"
	"tseries/internal/sim"
)

// header is the wire prefix of every message.
const headerBytes = 16

// HopLookahead reports the guaranteed minimum latency of one network
// hop: even an empty-payload message pays the DMA startup plus the wire
// time of its 16-byte header. A conservative parallel scheduler
// (sim.ShardGroup) partitioning the machine at node granularity may use
// it as the cross-shard synchronization window — no message injected at
// time t can reach a neighbouring node before t+HopLookahead.
func HopLookahead() sim.Duration { return link.TransferTime(headerBytes) }

// tagMask limits tags to 24 bits: the top byte of the tag word carries
// the hop counter that bounds detour routing.
const tagMask = 0xffffff

// Network is a set of nodes wired as a binary n-cube with a router
// process per node per dimension.
type Network struct {
	Dim   int
	Nodes []*node.Node
	eps   []*Endpoint

	// routes is the cached live-graph routing table (see route.go). It
	// is only consulted when some channel is down or some node crashed;
	// a healthy network routes pure e-cube without ever building it.
	routes *routeTable

	// view is the barrier-frozen topology view of a partitioned build
	// (see shard.go); nil on a single-kernel network, where every code
	// path below reads the live objects directly.
	view *netView
}

// Endpoint is one node's interface to the network.
type Endpoint struct {
	net *Network
	id  int
	nd  *node.Node

	mailboxes map[int]*sim.Chan // tag → delivery queue

	// Counters.
	Sent, Received, Forwarded int64
	BytesSent                 int64

	// Fault-aware routing counters.
	Detours    int64 // forwards over a non-e-cube (detour) dimension
	RouteDrops int64 // messages abandoned: hop budget spent or no usable channel
}

// CrashedError reports an operation addressed to a node that is out of
// service.
type CrashedError struct{ Node int }

func (e *CrashedError) Error() string {
	return fmt.Sprintf("comm: node %d has crashed", e.Node)
}

// IsCrashed reports whether err is (or wraps) a CrashedError.
func IsCrashed(err error) bool {
	var ce *CrashedError
	return errors.As(err, &ce)
}

// delivered is what lands in a mailbox.
type delivered struct {
	src     int
	payload []byte
}

// cubeSublink maps a cube dimension to a logical sublink, spreading the
// first dimensions across the four physical links so the three
// intramodule connections (dims 0..2) ride three separate wires — that
// is what makes the module's aggregate internode bandwidth exceed
// 12 MB/s. Logical sublinks 14 and 15 (link 3, sublinks 2 and 3) stay
// reserved for system communication, so a 14-cube exactly exhausts the
// remaining channels.
var cubeSublink = [cube.MaxDim]int{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 3, 7, 11}

// CubeSublink reports which logical sublink carries cube dimension d.
func CubeSublink(d int) int { return cubeSublink[d] }

// BuildCube wires the nodes' sublinks into a binary n-cube using the
// CubeSublink channel assignment, and starts a daemon router on every
// (node, dimension) pair.
func BuildCube(k *sim.Kernel, nodes []*node.Node) (*Network, error) {
	dim, err := cube.DimOf(len(nodes))
	if err != nil {
		return nil, err
	}
	if dim > cube.MaxDim {
		return nil, fmt.Errorf("comm: %d-cube exceeds the %d-cube wiring maximum", dim, cube.MaxDim)
	}
	n := &Network{Dim: dim, Nodes: nodes}
	for id, nd := range nodes {
		if nd.ID != id {
			return nil, fmt.Errorf("comm: node %d has ID %d; nodes must be in cube order", id, nd.ID)
		}
		n.eps = append(n.eps, &Endpoint{
			net: n, id: id, nd: nd,
			mailboxes: map[int]*sim.Chan{},
		})
	}
	// Wire dimension d between id and id^(1<<d), once per edge.
	for id := range nodes {
		for d := 0; d < dim; d++ {
			nb := cube.Neighbor(id, d)
			if nb < id {
				continue
			}
			a := nodes[id].Sublink(CubeSublink(d))
			b := nodes[nb].Sublink(CubeSublink(d))
			if err := link.Connect(a, b); err != nil {
				return nil, err
			}
		}
	}
	// Routers: one daemon per (node, dimension), listening on that
	// dimension's sublink. Each router knows its own dimension so the
	// forwarder can avoid bouncing a message straight back.
	for id := range nodes {
		ep := n.eps[id]
		for d := 0; d < dim; d++ {
			arriveDim := d
			sl := nodes[id].Sublink(CubeSublink(d))
			k.GoDaemon(fmt.Sprintf("router/n%d/d%d", id, d), func(p *sim.Proc) {
				for {
					raw := sl.Recv(p)
					ep.route(p, raw, arriveDim)
				}
			})
		}
	}
	return n, nil
}

// alive reports whether node id is in service. A partitioned network
// answers from the barrier-frozen view so no shard reads another
// shard's node state mid-window.
func (n *Network) alive(id int) bool {
	if n.view != nil {
		return n.view.alive[id]
	}
	return n.Nodes[id].Alive()
}

// anyCrashed reports whether any node is out of service. While false —
// the overwhelmingly common case — every code path is identical to the
// fault-free simulator.
func (n *Network) anyCrashed() bool {
	if n.view != nil {
		return n.view.anyDead
	}
	for _, nd := range n.Nodes {
		if !nd.Alive() {
			return true
		}
	}
	return false
}

// lowestAlive returns the smallest id of an in-service node, or -1.
func (n *Network) lowestAlive() int {
	if n.view != nil {
		return n.view.lowest
	}
	for id, nd := range n.Nodes {
		if nd.Alive() {
			return id
		}
	}
	return -1
}

// Flush discards all in-flight traffic: every sublink inbox and every
// endpoint mailbox. The recovery supervisor calls it after halting the
// machine so the replay starts from silence. It reports how many
// messages were dropped.
func (n *Network) Flush() int {
	total := 0
	for _, nd := range n.Nodes {
		for i := 0; i < link.SublinksPerNode; i++ {
			total += nd.Sublink(i).Flush()
		}
	}
	for _, ep := range n.eps {
		for _, mb := range ep.mailboxes {
			for {
				if _, ok := mb.TryRecv(); !ok {
					break
				}
				total++
			}
		}
	}
	return total
}

// Endpoint returns node id's network interface.
func (n *Network) Endpoint(id int) *Endpoint { return n.eps[id] }

// Size reports the number of nodes.
func (n *Network) Size() int { return len(n.eps) }

func (e *Endpoint) mailbox(tag int) *sim.Chan {
	mb, ok := e.mailboxes[tag]
	if !ok {
		mb = sim.NewChan(e.nd.K, fmt.Sprintf("n%d/mbox%d", e.id, tag), 1<<20)
		e.mailboxes[tag] = mb
	}
	return mb
}

// encode builds the wire form: src, dst, tag, len (uint32 LE) + payload.
// The top byte of the tag word (offset 11) is the hop counter.
func encode(src, dst, tag int, payload []byte) []byte {
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(src))
	binary.LittleEndian.PutUint32(buf[4:], uint32(dst))
	binary.LittleEndian.PutUint32(buf[8:], uint32(tag)&tagMask)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(payload)))
	copy(buf[headerBytes:], payload)
	return buf
}

func decode(raw []byte) (src, dst, tag int, payload []byte) {
	src = int(binary.LittleEndian.Uint32(raw[0:]))
	dst = int(binary.LittleEndian.Uint32(raw[4:]))
	tag = int(binary.LittleEndian.Uint32(raw[8:]) & tagMask)
	n := int(binary.LittleEndian.Uint32(raw[12:]))
	return src, dst, tag, raw[headerBytes : headerBytes+n]
}

func msgHops(raw []byte) int { return int(raw[11]) }
func bumpHops(raw []byte)    { raw[11]++ }

// maxHops bounds store-and-forward per message. E-cube needs at most
// Dim hops; detours around failed channels earn a generous multiple,
// after which the message is dropped rather than routed forever.
func (e *Endpoint) maxHops() int { return 3*e.net.Dim + 4 }

// route handles a message arriving at this node: deliver locally or
// forward toward dst (store-and-forward). arriveDim is the dimension
// the message came in on, or -1 when it was injected locally.
func (e *Endpoint) route(p *sim.Proc, raw []byte, arriveDim int) {
	src, dst, tag, payload := decode(raw)
	if dst == e.id {
		e.Received++
		e.mailbox(tag).Send(p, delivered{src: src, payload: payload})
		return
	}
	if msgHops(raw) >= e.maxHops() {
		e.RouteDrops++
		return
	}
	e.Forwarded++
	if e.forward(p, raw, dst, arriveDim) != nil {
		// A router daemon has nobody to report to; the drop shows up in
		// the counters and, eventually, as a timeout at the application.
		e.RouteDrops++
	}
}

// forward picks the outbound channel for a message to dst and sends it.
// On a healthy network the choice is pure e-cube: the lowest differing
// dimension, whose channel is up, so exactly one Send runs. With any
// channel down or node crashed, the choice comes from the live-graph
// next-hop table instead, which either lies on a shortest live path or
// proves the destination unreachable (a typed UnreachableError).
func (e *Endpoint) forward(p *sim.Proc, raw []byte, dst, arriveDim int) error {
	diff := e.id ^ dst
	bumpHops(raw)
	if v := e.net.view; v != nil {
		// Partitioned build: route from the barrier-frozen view. The
		// candidates loop reads only this shard's own channel state
		// (staged peers through their mirrors), so it stays usable; the
		// live-graph table is frozen until the next barrier, so a
		// channel dying mid-window falls back to the candidates loop
		// instead of a rebuild.
		if v.healthy {
			return e.sendCandidates(p, raw, dst, arriveDim, diff)
		}
		d := v.nextHop[e.id][dst]
		if d < 0 {
			return &UnreachableError{Src: e.id, Dst: dst}
		}
		err := e.nd.Sublink(CubeSublink(int(d))).Send(p, raw)
		if err == nil {
			if diff&(1<<uint(d)) == 0 {
				e.Detours++
			}
			return nil
		}
		if !link.IsDown(err) {
			return err
		}
		if e.sendCandidates(p, raw, dst, arriveDim, diff) == nil {
			return nil
		}
		return &UnreachableError{Src: e.id, Dst: dst}
	}
	t := e.net.refreshRoutes()
	if t.healthy {
		return e.sendCandidates(p, raw, dst, arriveDim, diff)
	}
	// Damaged topology: follow the table, allowing one rebuild-and-retry
	// if a channel died between the table build and this hop.
	for attempt := 0; attempt < 2; attempt++ {
		d := t.nextHop[e.id][dst]
		if d < 0 {
			return &UnreachableError{Src: e.id, Dst: dst}
		}
		err := e.nd.Sublink(CubeSublink(int(d))).Send(p, raw)
		if err == nil {
			if diff&(1<<uint(d)) == 0 {
				e.Detours++
			}
			return nil
		}
		if !link.IsDown(err) {
			return err
		}
		t = e.net.refreshRoutes()
	}
	return &UnreachableError{Src: e.id, Dst: dst}
}

// sendCandidates walks the deterministic candidate order, sending on
// the first channel that takes the frame.
func (e *Endpoint) sendCandidates(p *sim.Proc, raw []byte, dst, arriveDim, diff int) error {
	var lastErr error
	for _, d := range e.candidates(dst, arriveDim) {
		err := e.nd.Sublink(CubeSublink(d)).Send(p, raw)
		if err == nil {
			if diff&(1<<uint(d)) == 0 {
				e.Detours++
			}
			return nil
		}
		if !link.IsDown(err) {
			return err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("comm: node %d has no usable channel toward %d", e.id, dst)
	}
	return lastErr
}

// candidates lists outbound dimensions to try, in deterministic
// preference order: e-cube dimensions (lowest differing first) that are
// up, excluding the arrival dimension; then the arrival dimension if it
// is a differing one (progress back the way we came still shortens the
// route); and last, up non-differing dimensions — true detours. The
// arrival dimension is never used as a detour: that would bounce the
// message straight back.
func (e *Endpoint) candidates(dst, arriveDim int) []int {
	diff := e.id ^ dst
	cand := make([]int, 0, e.net.Dim)
	for d := 0; d < e.net.Dim; d++ {
		if diff&(1<<uint(d)) != 0 && d != arriveDim && e.nd.Sublink(CubeSublink(d)).Up() {
			cand = append(cand, d)
		}
	}
	if arriveDim >= 0 && diff&(1<<uint(arriveDim)) != 0 && e.nd.Sublink(CubeSublink(arriveDim)).Up() {
		cand = append(cand, arriveDim)
	}
	for d := 0; d < e.net.Dim; d++ {
		if diff&(1<<uint(d)) == 0 && d != arriveDim && e.nd.Sublink(CubeSublink(d)).Up() {
			cand = append(cand, d)
		}
	}
	return cand
}

// Send delivers payload to node dst under tag. The caller blocks for the
// first-hop wire time; intermediate hops forward concurrently
// (store-and-forward, so an h-hop message costs about h times the wire
// time plus h DMA startups). Sending to a crashed node fails fast with
// a CrashedError; a send abandoned en route surfaces as a DownError or
// is dropped at an intermediate router (visible in RouteDrops).
func (e *Endpoint) Send(p *sim.Proc, dst, tag int, payload []byte) error {
	if dst == e.id {
		// Local delivery costs nothing on the wire.
		e.Sent++
		e.mailbox(tag).Send(p, delivered{src: e.id, payload: append([]byte(nil), payload...)})
		return nil
	}
	if dst < 0 || dst >= e.net.Size() {
		return fmt.Errorf("comm: destination %d outside %d-cube", dst, e.net.Dim)
	}
	if !e.net.alive(dst) {
		return &CrashedError{Node: dst}
	}
	e.Sent++
	e.BytesSent += int64(len(payload))
	return e.forward(p, encode(e.id, dst, tag, payload), dst, -1)
}

// Recv blocks until a message with the given tag arrives.
func (e *Endpoint) Recv(p *sim.Proc, tag int) (src int, payload []byte) {
	d := e.mailbox(tag).Recv(p).(delivered)
	return d.src, d.payload
}

// ID reports the endpoint's cube address.
func (e *Endpoint) ID() int { return e.id }

// Node returns the underlying processor node.
func (e *Endpoint) Node() *node.Node { return e.nd }

// Dim reports the cube dimension.
func (e *Endpoint) Dim() int { return e.net.Dim }

// Typed helpers: 64-bit vectors travel as little-endian bytes, eight per
// element — exactly what the link DMA would carry.

// SendF64 sends a vector of 64-bit elements.
func (e *Endpoint) SendF64(p *sim.Proc, dst, tag int, vals []fparith.F64) error {
	return e.Send(p, dst, tag, packF64(vals))
}

// RecvF64 receives a vector of 64-bit elements.
func (e *Endpoint) RecvF64(p *sim.Proc, tag int) (int, []fparith.F64) {
	src, payload := e.Recv(p, tag)
	return src, unpackF64(payload)
}

func packF64(vals []fparith.F64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

func unpackF64(b []byte) []fparith.F64 {
	out := make([]fparith.F64, len(b)/8)
	for i := range out {
		out[i] = fparith.F64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
