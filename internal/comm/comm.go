// Package comm is the message-passing library of the simulated T Series:
// typed point-to-point messages over the hypercube sublinks with
// store-and-forward e-cube routing, plus the standard hypercube
// collectives (broadcast, reduce, all-reduce, gather, scatter, barrier,
// all-to-all) built by recursive doubling and binomial trees — the
// communication patterns the paper's Figure 3 mappings exist to serve.
package comm

import (
	"encoding/binary"
	"fmt"

	"tseries/internal/cube"
	"tseries/internal/fparith"
	"tseries/internal/link"
	"tseries/internal/node"
	"tseries/internal/sim"
)

// header is the wire prefix of every message.
const headerBytes = 16

// Network is a set of nodes wired as a binary n-cube with a router
// process per node per dimension.
type Network struct {
	Dim   int
	Nodes []*node.Node
	eps   []*Endpoint
}

// Endpoint is one node's interface to the network.
type Endpoint struct {
	net *Network
	id  int
	nd  *node.Node

	mailboxes map[int]*sim.Chan // tag → delivery queue

	// Counters.
	Sent, Received, Forwarded int64
	BytesSent                 int64
}

// delivered is what lands in a mailbox.
type delivered struct {
	src     int
	payload []byte
}

// cubeSublink maps a cube dimension to a logical sublink, spreading the
// first dimensions across the four physical links so the three
// intramodule connections (dims 0..2) ride three separate wires — that
// is what makes the module's aggregate internode bandwidth exceed
// 12 MB/s. Logical sublinks 14 and 15 (link 3, sublinks 2 and 3) stay
// reserved for system communication, so a 14-cube exactly exhausts the
// remaining channels.
var cubeSublink = [cube.MaxDim]int{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 3, 7, 11}

// CubeSublink reports which logical sublink carries cube dimension d.
func CubeSublink(d int) int { return cubeSublink[d] }

// BuildCube wires the nodes' sublinks into a binary n-cube using the
// CubeSublink channel assignment, and starts a daemon router on every
// (node, dimension) pair.
func BuildCube(k *sim.Kernel, nodes []*node.Node) (*Network, error) {
	dim, err := cube.DimOf(len(nodes))
	if err != nil {
		return nil, err
	}
	if dim > cube.MaxDim {
		return nil, fmt.Errorf("comm: %d-cube exceeds the %d-cube wiring maximum", dim, cube.MaxDim)
	}
	n := &Network{Dim: dim, Nodes: nodes}
	for id, nd := range nodes {
		if nd.ID != id {
			return nil, fmt.Errorf("comm: node %d has ID %d; nodes must be in cube order", id, nd.ID)
		}
		n.eps = append(n.eps, &Endpoint{
			net: n, id: id, nd: nd,
			mailboxes: map[int]*sim.Chan{},
		})
	}
	// Wire dimension d between id and id^(1<<d), once per edge.
	for id := range nodes {
		for d := 0; d < dim; d++ {
			nb := cube.Neighbor(id, d)
			if nb < id {
				continue
			}
			a := nodes[id].Sublink(CubeSublink(d))
			b := nodes[nb].Sublink(CubeSublink(d))
			if err := link.Connect(a, b); err != nil {
				return nil, err
			}
		}
	}
	// Routers: one daemon per (node, dimension), listening on that
	// dimension's sublink.
	for id := range nodes {
		ep := n.eps[id]
		for d := 0; d < dim; d++ {
			sl := nodes[id].Sublink(CubeSublink(d))
			k.GoDaemon(fmt.Sprintf("router/n%d/d%d", id, d), func(p *sim.Proc) {
				for {
					raw := sl.Recv(p)
					ep.route(p, raw)
				}
			})
		}
	}
	return n, nil
}

// Endpoint returns node id's network interface.
func (n *Network) Endpoint(id int) *Endpoint { return n.eps[id] }

// Size reports the number of nodes.
func (n *Network) Size() int { return len(n.eps) }

func (e *Endpoint) mailbox(tag int) *sim.Chan {
	mb, ok := e.mailboxes[tag]
	if !ok {
		mb = sim.NewChan(e.nd.K, fmt.Sprintf("n%d/mbox%d", e.id, tag), 1<<20)
		e.mailboxes[tag] = mb
	}
	return mb
}

// encode builds the wire form: src, dst, tag, len (uint32 LE) + payload.
func encode(src, dst, tag int, payload []byte) []byte {
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(src))
	binary.LittleEndian.PutUint32(buf[4:], uint32(dst))
	binary.LittleEndian.PutUint32(buf[8:], uint32(tag))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(payload)))
	copy(buf[headerBytes:], payload)
	return buf
}

func decode(raw []byte) (src, dst, tag int, payload []byte) {
	src = int(binary.LittleEndian.Uint32(raw[0:]))
	dst = int(binary.LittleEndian.Uint32(raw[4:]))
	tag = int(binary.LittleEndian.Uint32(raw[8:]))
	n := int(binary.LittleEndian.Uint32(raw[12:]))
	return src, dst, tag, raw[headerBytes : headerBytes+n]
}

// hopSublink picks the e-cube next hop for a destination: the lowest
// dimension in which this node's id differs from dst.
func (e *Endpoint) hopSublink(dst int) (*link.Sublink, error) {
	diff := e.id ^ dst
	if diff == 0 {
		return nil, fmt.Errorf("comm: node %d routing to itself", e.id)
	}
	for d := 0; d < e.net.Dim; d++ {
		if diff&(1<<uint(d)) != 0 {
			return e.nd.Sublink(CubeSublink(d)), nil
		}
	}
	return nil, fmt.Errorf("comm: destination %d outside %d-cube", dst, e.net.Dim)
}

// route handles a message arriving at this node: deliver locally or
// forward along the e-cube path (store-and-forward).
func (e *Endpoint) route(p *sim.Proc, raw []byte) {
	_, dst, tag, _ := decode(raw)
	if dst == e.id {
		src, _, _, payload := decode(raw)
		e.Received++
		e.mailbox(tag).Send(p, delivered{src: src, payload: payload})
		return
	}
	sl, err := e.hopSublink(dst)
	if err != nil {
		panic(err) // corrupt routing state is a simulator bug
	}
	e.Forwarded++
	if err := sl.Send(p, raw); err != nil {
		panic(err)
	}
}

// Send delivers payload to node dst under tag. The caller blocks for the
// first-hop wire time; intermediate hops forward concurrently
// (store-and-forward, so an h-hop message costs about h times the wire
// time plus h DMA startups).
func (e *Endpoint) Send(p *sim.Proc, dst, tag int, payload []byte) error {
	if dst == e.id {
		// Local delivery costs nothing on the wire.
		e.Sent++
		e.mailbox(tag).Send(p, delivered{src: e.id, payload: append([]byte(nil), payload...)})
		return nil
	}
	sl, err := e.hopSublink(dst)
	if err != nil {
		return err
	}
	e.Sent++
	e.BytesSent += int64(len(payload))
	return sl.Send(p, encode(e.id, dst, tag, payload))
}

// Recv blocks until a message with the given tag arrives.
func (e *Endpoint) Recv(p *sim.Proc, tag int) (src int, payload []byte) {
	d := e.mailbox(tag).Recv(p).(delivered)
	return d.src, d.payload
}

// ID reports the endpoint's cube address.
func (e *Endpoint) ID() int { return e.id }

// Node returns the underlying processor node.
func (e *Endpoint) Node() *node.Node { return e.nd }

// Dim reports the cube dimension.
func (e *Endpoint) Dim() int { return e.net.Dim }

// Typed helpers: 64-bit vectors travel as little-endian bytes, eight per
// element — exactly what the link DMA would carry.

// SendF64 sends a vector of 64-bit elements.
func (e *Endpoint) SendF64(p *sim.Proc, dst, tag int, vals []fparith.F64) error {
	return e.Send(p, dst, tag, packF64(vals))
}

// RecvF64 receives a vector of 64-bit elements.
func (e *Endpoint) RecvF64(p *sim.Proc, tag int) (int, []fparith.F64) {
	src, payload := e.Recv(p, tag)
	return src, unpackF64(payload)
}

func packF64(vals []fparith.F64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

func unpackF64(b []byte) []fparith.F64 {
	out := make([]fparith.F64, len(b)/8)
	for i := range out {
		out[i] = fparith.F64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
