package comm

import (
	"tseries/internal/stats"
)

// LinkStats aggregates wire-level accounting across the network.
type LinkStats struct {
	Transfers   int64
	BytesOnWire int64
	// MaxWireUtil is the busiest single outbound wire's utilisation
	// since simulation start (0..1) — the congestion hot spot.
	MaxWireUtil float64
	// MeanWireUtil averages over all wires that carried traffic.
	MeanWireUtil float64
}

// Stats walks every node's physical links and aggregates counters.
func (n *Network) Stats() LinkStats {
	var out LinkStats
	var used int
	var sum float64
	for _, nd := range n.Nodes {
		for _, l := range nd.Links {
			out.Transfers += l.Transfers
			out.BytesOnWire += l.BytesSent
			if l.Transfers == 0 {
				continue
			}
			u := l.Wire().Utilization()
			used++
			sum += u
			if u > out.MaxWireUtil {
				out.MaxWireUtil = u
			}
		}
	}
	if used > 0 {
		out.MeanWireUtil = sum / float64(used)
	}
	return out
}

// Report renders a table of per-endpoint traffic plus the wire summary.
func (n *Network) Report() *stats.Table {
	t := stats.NewTable("network traffic",
		"node", "sent", "received", "forwarded", "bytes sent")
	for id, e := range n.eps {
		t.Add(id, e.Sent, e.Received, e.Forwarded, e.BytesSent)
	}
	s := n.Stats()
	t.Add("wire", s.Transfers, "-", "-", s.BytesOnWire)
	return t
}
