package comm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tseries/internal/fparith"
	"tseries/internal/sim"
)

func TestDetourAroundDownedLink(t *testing.T) {
	// Cut the dimension-0 edge between nodes 0 and 1 of a 2-cube. The
	// e-cube route 0→1 is exactly that edge, so the message must detour
	// 0→2→3→1 and still arrive intact.
	k, net := buildNet(t, 2)
	net.Nodes[0].Sublink(CubeSublink(0)).SetDown(true)
	payload := []byte("around the block")
	var got []byte
	var src int
	k.Go("tx", func(p *sim.Proc) {
		if err := net.Endpoint(0).Send(p, 1, 5, payload); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) { src, got = net.Endpoint(1).Recv(p, 5) })
	k.Run(0)
	if src != 0 || !bytes.Equal(got, payload) {
		t.Fatalf("src=%d got=%q", src, got)
	}
	if net.Endpoint(0).Detours != 1 {
		t.Fatalf("origin detours = %d, want 1", net.Endpoint(0).Detours)
	}
	var drops int64
	for id := 0; id < net.Size(); id++ {
		drops += net.Endpoint(id).RouteDrops
	}
	if drops != 0 {
		t.Fatalf("detour route dropped %d messages", drops)
	}
}

func TestRouteRestoredAfterLinkUp(t *testing.T) {
	k, net := buildNet(t, 2)
	sl := net.Nodes[0].Sublink(CubeSublink(0))
	sl.SetDown(true)
	sl.SetDown(false)
	var got []byte
	k.Go("tx", func(p *sim.Proc) {
		if err := net.Endpoint(0).Send(p, 1, 5, []byte{1}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) { _, got = net.Endpoint(1).Recv(p, 5) })
	k.Run(0)
	if len(got) != 1 {
		t.Fatal("no delivery after link restore")
	}
	if net.Endpoint(0).Detours != 0 {
		t.Fatal("restored link still detouring")
	}
}

func TestSendToCrashedNodeFailsFast(t *testing.T) {
	k, net := buildNet(t, 2)
	net.Nodes[3].Crash()
	var err error
	k.Go("tx", func(p *sim.Proc) { err = net.Endpoint(0).Send(p, 3, 5, []byte{1}) })
	k.Run(0)
	if !IsCrashed(err) {
		t.Fatalf("got %v, want CrashedError", err)
	}
}

func TestDegradedCollectivesAmongSurvivors(t *testing.T) {
	// Crash node 2 of a 2-cube; the survivors' broadcast, reduce, and
	// all-reduce must re-root around the hole and still agree.
	k, net := buildNet(t, 2)
	net.Nodes[2].Crash()
	alive := []int{0, 1, 3}

	bcast := make(map[int][]byte)
	sums := make(map[int]float64)
	reduced := make(map[int][]fparith.F64)
	for _, id := range alive {
		e := net.Endpoint(id)
		k.Go(e.nd.Name+"/main", func(p *sim.Proc) {
			got, err := e.Broadcast(p, 0, 11, []byte("fanout"))
			if err != nil {
				t.Errorf("node %d broadcast: %v", e.id, err)
				return
			}
			bcast[e.id] = got
			out, err := e.AllReduceF64(p, 21, AddF64, []fparith.F64{fparith.FromInt64(int64(e.id))})
			if err != nil {
				t.Errorf("node %d allreduce: %v", e.id, err)
				return
			}
			sums[e.id] = out[0].Float64()
			r, err := e.ReduceF64(p, 0, 31, AddF64, []fparith.F64{fparith.FromInt64(int64(e.id + 1))})
			if err != nil {
				t.Errorf("node %d reduce: %v", e.id, err)
				return
			}
			reduced[e.id] = r
		})
	}
	k.Run(0)
	for _, id := range alive {
		if !bytes.Equal(bcast[id], []byte("fanout")) {
			t.Fatalf("node %d broadcast got %q", id, bcast[id])
		}
		if sums[id] != 4 { // 0 + 1 + 3
			t.Fatalf("node %d allreduce sum = %g, want 4", id, sums[id])
		}
	}
	if len(reduced[0]) != 1 || reduced[0][0].Float64() != 7 { // 1 + 2 + 4
		t.Fatalf("root reduce = %v", reduced[0])
	}
}

func TestBroadcastFromCrashedRoot(t *testing.T) {
	k, net := buildNet(t, 2)
	net.Nodes[2].Crash()
	errs := make(map[int]error)
	for _, id := range []int{0, 1, 3} {
		e := net.Endpoint(id)
		k.Go(e.nd.Name+"/main", func(p *sim.Proc) {
			_, errs[e.id] = e.Broadcast(p, 2, 41, []byte("nope"))
		})
	}
	k.Run(0)
	for id, err := range errs {
		if !IsCrashed(err) {
			t.Fatalf("node %d: got %v, want CrashedError", id, err)
		}
	}
}

func TestCrashRepairRestoresFastPath(t *testing.T) {
	k, net := buildNet(t, 2)
	net.Nodes[1].Crash()
	if !net.anyCrashed() {
		t.Fatal("crash not visible")
	}
	net.Nodes[1].Repair()
	if net.anyCrashed() {
		t.Fatal("repair not visible")
	}
	// Full-machine all-reduce works again, fast path.
	sums := make([]float64, net.Size())
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		out, err := e.AllReduceF64(p, 51, AddF64, []fparith.F64{fparith.FromInt64(int64(e.id))})
		if err != nil {
			t.Errorf("node %d: %v", e.id, err)
			return
		}
		sums[e.id] = out[0].Float64()
	})
	for id, v := range sums {
		if v != 6 {
			t.Fatalf("node %d sum = %g, want 6", id, v)
		}
	}
}

// TestManyDeadLinksProperty is the detour property test: across many
// seeded trials, a random set of simultaneously dead channels is cut
// out of a 3-cube, reachability is computed independently on the host,
// and then every ordered pair is exercised — pairs the live graph still
// connects must deliver intact (however crooked the route), and pairs
// it has partitioned must fail at the origin with a typed
// UnreachableError. Nothing may be silently dropped en route.
func TestManyDeadLinksProperty(t *testing.T) {
	const dim = 3
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			k, net := buildNet(t, dim)
			rng := rand.New(rand.NewSource(seed))
			// Cut 2..7 of the 12 edges. Each edge is (node, dim) with the
			// lower endpoint naming it; SetDown on one end downs both ways.
			type edge struct{ nd, d int }
			var edges []edge
			for n := 0; n < net.Size(); n++ {
				for d := 0; d < dim; d++ {
					if n < n^(1<<uint(d)) {
						edges = append(edges, edge{n, d})
					}
				}
			}
			rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
			dead := edges[:2+rng.Intn(6)]
			for _, e := range dead {
				net.Nodes[e.nd].Sublink(CubeSublink(e.d)).SetDown(true)
			}
			// Host-side reachability over the live graph.
			reach := make([][]bool, net.Size())
			for src := range reach {
				reach[src] = make([]bool, net.Size())
				seen := map[int]bool{src: true}
				queue := []int{src}
				for len(queue) > 0 {
					u := queue[0]
					queue = queue[1:]
					reach[src][u] = true
					for d := 0; d < dim; d++ {
						v := u ^ (1 << uint(d))
						if !seen[v] && net.Nodes[u].Sublink(CubeSublink(d)).Up() {
							seen[v] = true
							queue = append(queue, v)
						}
					}
				}
			}
			// Exercise every ordered pair concurrently, one tag per pair.
			type verdict struct {
				delivered bool
				err       error
			}
			verdicts := make(map[[2]int]*verdict)
			for src := 0; src < net.Size(); src++ {
				for dst := 0; dst < net.Size(); dst++ {
					if src == dst {
						continue
					}
					src, dst := src, dst
					v := &verdict{}
					verdicts[[2]int{src, dst}] = v
					tag := src*64 + dst
					payload := []byte{byte(src), byte(dst), byte(seed)}
					if reach[src][dst] {
						k.Go(fmt.Sprintf("rx%d-%d", src, dst), func(p *sim.Proc) {
							from, got := net.Endpoint(dst).Recv(p, tag)
							v.delivered = from == src && bytes.Equal(got, payload)
						})
					}
					k.Go(fmt.Sprintf("tx%d-%d", src, dst), func(p *sim.Proc) {
						v.err = net.Endpoint(src).Send(p, dst, tag, payload)
					})
				}
			}
			k.Run(0)
			for pair, v := range verdicts {
				src, dst := pair[0], pair[1]
				if reach[src][dst] {
					if v.err != nil || !v.delivered {
						t.Errorf("reachable pair %d→%d: err=%v delivered=%v (dead: %v)",
							src, dst, v.err, v.delivered, dead)
					}
				} else if !IsUnreachable(v.err) {
					t.Errorf("partitioned pair %d→%d: got %v, want UnreachableError (dead: %v)",
						src, dst, v.err, dead)
				}
			}
			var drops int64
			for id := 0; id < net.Size(); id++ {
				drops += net.Endpoint(id).RouteDrops
			}
			if drops != 0 {
				t.Errorf("%d messages silently dropped en route (dead: %v)", drops, dead)
			}
		})
	}
}
