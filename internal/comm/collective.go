package comm

import (
	"fmt"

	"tseries/internal/cube"
	"tseries/internal/fparith"
	"tseries/internal/sim"
)

// Collectives. Every node's process calls the same collective with the
// same tag; tags are namespaced per phase internally (tag, tag+1, … up
// to tag+Dim), so callers must leave a gap of at least Dim+1 between
// concurrently used tags.

// Barrier blocks until every node has entered it (a zero-value
// all-reduce by recursive doubling: Dim exchange rounds).
func (e *Endpoint) Barrier(p *sim.Proc, tag int) error {
	_, err := e.AllReduceF64(p, tag, nil, nil)
	return err
}

// AllReduceF64 combines equal-length vectors from all nodes elementwise
// with op and returns the result on every node, by recursive doubling:
// in round d each node exchanges its partial with its dimension-d
// neighbor. op nil with empty input degenerates to a barrier.
//
// With crashed nodes present the recursive-doubling pattern cannot work
// (every node needs every neighbor), so the survivors fall back to a
// reduce onto the lowest alive node followed by a broadcast, both over
// the crash-adopted binomial tree. The fallback consumes tags up to
// tag+Size+2·Dim+1.
func (e *Endpoint) AllReduceF64(p *sim.Proc, tag int, op func(a, b fparith.F64) fparith.F64, vals []fparith.F64) ([]fparith.F64, error) {
	if e.net.anyCrashed() {
		root := e.net.lowestAlive()
		if root < 0 {
			return nil, fmt.Errorf("comm: allreduce with no nodes alive")
		}
		acc, err := e.ReduceF64(p, root, tag, op, vals)
		if err != nil {
			return nil, err
		}
		var pay []byte
		if e.id == root {
			pay = packF64(acc)
		}
		got, err := e.Broadcast(p, root, tag+e.net.Size()+e.net.Dim+1, pay)
		if err != nil {
			return nil, err
		}
		return unpackF64(got), nil
	}
	acc := append([]fparith.F64(nil), vals...)
	for d := 0; d < e.net.Dim; d++ {
		peer := cube.Neighbor(e.id, d)
		if err := e.SendF64(p, peer, tag+d, acc); err != nil {
			return nil, err
		}
		src, theirs := e.RecvF64(p, tag+d)
		if src != peer {
			return nil, fmt.Errorf("comm: allreduce round %d on node %d: message from %d, want %d", d, e.id, src, peer)
		}
		if len(theirs) != len(acc) {
			return nil, fmt.Errorf("comm: allreduce length mismatch on node %d", e.id)
		}
		for i := range acc {
			// Combine in a fixed (lower id first) order so every node
			// computes bit-identical results regardless of arrival
			// order.
			if e.id < peer {
				acc[i] = op(acc[i], theirs[i])
			} else {
				acc[i] = op(theirs[i], acc[i])
			}
		}
	}
	return acc, nil
}

// AllGatherF64 concatenates every node's chunk (ordered by node id) on
// all nodes by recursive doubling: in round d each node exchanges its
// accumulated block with its dimension-d neighbor, doubling the held
// range — Dim rounds instead of the naive N−1.
func (e *Endpoint) AllGatherF64(p *sim.Proc, tag int, vals []fparith.F64) ([]fparith.F64, error) {
	per := len(vals)
	size := e.net.Size()
	out := make([]fparith.F64, per*size)
	copy(out[e.id*per:(e.id+1)*per], vals)
	have := 1 // number of contiguous chunks held, aligned to a subcube
	base := e.id
	for d := 0; d < e.net.Dim; d++ {
		peer := cube.Neighbor(e.id, d)
		// My held range covers the aligned subcube of `have` chunks.
		myLo := base &^ (have - 1)
		block := out[myLo*per : (myLo+have)*per]
		if err := e.SendF64(p, peer, tag+d, block); err != nil {
			return nil, err
		}
		src, theirs := e.RecvF64(p, tag+d)
		if src != peer {
			return nil, fmt.Errorf("comm: allgather round %d on node %d: from %d, want %d", d, e.id, src, peer)
		}
		theirLo := peer &^ (have - 1)
		copy(out[theirLo*per:theirLo*per+len(theirs)], theirs)
		have *= 2
	}
	return out, nil
}

// AllReduceBestF64 is a whole-vector tournament all-reduce: every node
// contributes a candidate vector and all nodes end with the single
// candidate that wins the `better` comparison — the argmax pattern
// (e.g. pivot selection: vals = [magnitude, row]). `better(a, b)`
// reports whether a beats b; ties must break deterministically.
func (e *Endpoint) AllReduceBestF64(p *sim.Proc, tag int, better func(a, b []fparith.F64) bool, vals []fparith.F64) ([]fparith.F64, error) {
	best := append([]fparith.F64(nil), vals...)
	for d := 0; d < e.net.Dim; d++ {
		peer := cube.Neighbor(e.id, d)
		if err := e.SendF64(p, peer, tag+d, best); err != nil {
			return nil, err
		}
		src, theirs := e.RecvF64(p, tag+d)
		if src != peer {
			return nil, fmt.Errorf("comm: best-reduce round %d on node %d: message from %d, want %d", d, e.id, src, peer)
		}
		if better(theirs, best) {
			best = theirs
		}
	}
	return best, nil
}

// Broadcast distributes root's payload to every node along the binomial
// spanning tree (at most Dim link hops). Every node passes its own
// payload argument; only root's is used.
//
// If nodes have crashed, the survivors re-root around them: each alive
// node's effective parent is its nearest alive tree ancestor, and the
// orphaned subtrees of a dead interior node are adopted by that
// ancestor. A dead root is a partial failure the collective reports as
// an error rather than deadlocking on.
func (e *Endpoint) Broadcast(p *sim.Proc, root, tag int, payload []byte) ([]byte, error) {
	degraded := e.net.anyCrashed()
	if degraded && !e.net.alive(root) {
		return nil, &CrashedError{Node: root}
	}
	data := payload
	if e.id != root {
		want := treeParent(e.id, root)
		if degraded {
			want = e.aliveParent(root)
		}
		src, got := e.Recv(p, tag)
		if src != want {
			return nil, fmt.Errorf("comm: broadcast on node %d: from %d, want parent %d", e.id, src, want)
		}
		data = got
	}
	children := cube.Children(e.id, root, e.net.Dim)
	if degraded {
		children = e.aliveChildren(e.id, root)
	}
	for _, child := range children {
		if err := e.Send(p, child, tag, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// ReduceF64 combines vectors from all nodes onto root along the binomial
// tree (children send up; interior nodes fold). Non-root nodes return nil.
//
// With crashed nodes the survivors fold over the adopted tree (see
// Broadcast); crashed nodes' contributions are simply missing, which
// the caller must account for. Degraded mode tags each child by its
// node id (tag+Dim+child), so the namespace widens to tag+Dim+Size.
func (e *Endpoint) ReduceF64(p *sim.Proc, root, tag int, op func(a, b fparith.F64) fparith.F64, vals []fparith.F64) ([]fparith.F64, error) {
	if e.net.anyCrashed() {
		return e.reduceDegraded(p, root, tag, op, vals)
	}
	acc := append([]fparith.F64(nil), vals...)
	children := cube.Children(e.id, root, e.net.Dim)
	// Receive from children in deterministic (deepest-first) order: each
	// child sends on its own subtag to keep folding order fixed.
	for _, child := range children {
		src, theirs := e.RecvF64(p, tag+childSlot(child, e.id))
		if src != child {
			return nil, fmt.Errorf("comm: reduce on node %d: from %d, want child %d", e.id, src, child)
		}
		for i := range acc {
			acc[i] = op(acc[i], theirs[i])
		}
	}
	if e.id == root {
		return acc, nil
	}
	parent := treeParent(e.id, root)
	if err := e.SendF64(p, parent, tag+childSlot(e.id, parent), acc); err != nil {
		return nil, err
	}
	return nil, nil
}

func (e *Endpoint) reduceDegraded(p *sim.Proc, root, tag int, op func(a, b fparith.F64) fparith.F64, vals []fparith.F64) ([]fparith.F64, error) {
	if !e.net.alive(root) {
		return nil, &CrashedError{Node: root}
	}
	acc := append([]fparith.F64(nil), vals...)
	for _, child := range e.aliveChildren(e.id, root) {
		src, theirs := e.RecvF64(p, tag+e.net.Dim+child)
		if src != child {
			return nil, fmt.Errorf("comm: reduce on node %d: from %d, want child %d", e.id, src, child)
		}
		if len(theirs) != len(acc) {
			return nil, fmt.Errorf("comm: reduce length mismatch on node %d", e.id)
		}
		for i := range acc {
			acc[i] = op(acc[i], theirs[i])
		}
	}
	if e.id == root {
		return acc, nil
	}
	parent := e.aliveParent(root)
	if err := e.SendF64(p, parent, tag+e.net.Dim+e.id, acc); err != nil {
		return nil, err
	}
	return nil, nil
}

// aliveParent walks the binomial-tree ancestor chain to the nearest
// in-service node. The caller must have verified the root is alive, so
// the walk terminates.
func (e *Endpoint) aliveParent(root int) int {
	par := e.id
	for {
		par = treeParent(par, root)
		if par == root || e.net.alive(par) {
			return par
		}
	}
}

// aliveChildren lists the in-service tree children of id, with the
// subtrees of dead children adopted in place (deterministic order).
func (e *Endpoint) aliveChildren(id, root int) []int {
	var out []int
	for _, c := range cube.Children(id, root, e.net.Dim) {
		if e.net.alive(c) {
			out = append(out, c)
		} else {
			out = append(out, e.aliveChildren(c, root)...)
		}
	}
	return out
}

// treeParent is the binomial-tree parent of id for the given root: clear
// the highest set bit of the relative address.
func treeParent(id, root int) int {
	rel := id ^ root
	hb := 0
	for rel>>1 != 0 {
		rel >>= 1
		hb++
	}
	return id ^ 1<<uint(hb)
}

// childSlot gives a stable per-child tag offset: the dimension of the
// edge between child and parent.
func childSlot(child, parent int) int {
	diff := child ^ parent
	d := 0
	for diff > 1 {
		diff >>= 1
		d++
	}
	return d
}

// ScatterF64 splits root's vector into equal chunks, delivering chunk i
// to node i (recursive halving down the binomial tree). Every node
// returns its chunk.
func (e *Endpoint) ScatterF64(p *sim.Proc, root, tag int, vals []fparith.F64) ([]fparith.F64, error) {
	size := e.net.Size()
	var mine []fparith.F64
	if e.id == root {
		if len(vals)%size != 0 {
			return nil, fmt.Errorf("comm: scatter length %d not divisible by %d", len(vals), size)
		}
		per := len(vals) / size
		for id := 0; id < size; id++ {
			chunk := vals[id*per : (id+1)*per]
			if id == root {
				mine = append([]fparith.F64(nil), chunk...)
				continue
			}
			if err := e.SendF64(p, id, tag, chunk); err != nil {
				return nil, err
			}
		}
		return mine, nil
	}
	_, mine = e.RecvF64(p, tag)
	return mine, nil
}

// GatherF64 collects each node's chunk onto root, ordered by node id.
// Non-root nodes return nil.
func (e *Endpoint) GatherF64(p *sim.Proc, root, tag int, vals []fparith.F64) ([]fparith.F64, error) {
	if e.id != root {
		return nil, e.SendF64(p, root, tag, vals)
	}
	size := e.net.Size()
	chunks := make([][]fparith.F64, size)
	chunks[root] = vals
	for i := 0; i < size-1; i++ {
		src, theirs := e.RecvF64(p, tag)
		if chunks[src] != nil {
			return nil, fmt.Errorf("comm: gather got two chunks from %d", src)
		}
		chunks[src] = theirs
	}
	var out []fparith.F64
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}

// AllToAllF64 delivers chunk j of each node's vector to node j and
// returns the received chunks ordered by source. Implemented as Size-1
// direct sends (each e-cube routed); a personalised exchange.
func (e *Endpoint) AllToAllF64(p *sim.Proc, tag int, vals []fparith.F64) ([]fparith.F64, error) {
	size := e.net.Size()
	if len(vals)%size != 0 {
		return nil, fmt.Errorf("comm: alltoall length %d not divisible by %d", len(vals), size)
	}
	per := len(vals) / size
	out := make([]fparith.F64, len(vals))
	copy(out[e.id*per:(e.id+1)*per], vals[e.id*per:(e.id+1)*per])
	for off := 1; off < size; off++ {
		dst := e.id ^ off // pairwise exchange pattern avoids hot spots
		if err := e.SendF64(p, dst, tag, vals[dst*per:(dst+1)*per]); err != nil {
			return nil, err
		}
	}
	for off := 1; off < size; off++ {
		src, theirs := e.RecvF64(p, tag)
		if len(theirs) != per {
			return nil, fmt.Errorf("comm: alltoall chunk size mismatch from %d", src)
		}
		copy(out[src*per:(src+1)*per], theirs)
	}
	return out, nil
}

// AddF64 is the usual reduction operator.
func AddF64(a, b fparith.F64) fparith.F64 { return fparith.Add64(a, b) }

// MaxF64 keeps the larger operand (NaNs lose).
func MaxF64(a, b fparith.F64) fparith.F64 {
	if fparith.Cmp64(a, b) == 1 {
		return a
	}
	return b
}
