package comm

import (
	"errors"
	"fmt"

	"tseries/internal/cube"
	"tseries/internal/link"
)

// Live-graph routing. The fault-free network routes pure e-cube: correct
// the lowest differing address bit whose channel is up. That greedy rule
// survives a single outage (the detour candidates in candidates()), but
// under several simultaneous dead links a greedy detour can wander into
// a corner where every remaining choice bounces the message around until
// its hop budget dies. So whenever the topology is damaged, forwarding
// switches to a next-hop table computed by breadth-first search over the
// live graph — the nodes still in service and the channels still up.
// The table is cached against link.TopologyEpoch and rebuilt only when
// some channel actually changed state; with the machine healthy the fast
// path is byte-identical to the fault-free simulator.

// UnreachableError reports that no sequence of live channels connects
// this node to the destination: the failures have partitioned the cube.
type UnreachableError struct {
	Src, Dst int
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("comm: node %d is unreachable from node %d (network partitioned)", e.Dst, e.Src)
}

// IsUnreachable reports whether err is (or wraps) an UnreachableError.
func IsUnreachable(err error) bool {
	var ue *UnreachableError
	return errors.As(err, &ue)
}

// routeTable is one generation of live-graph routing state.
type routeTable struct {
	epoch   int64
	healthy bool     // every node alive, every channel up: use pure e-cube
	nextHop [][]int8 // [src][dst] → outbound dimension, -1 unreachable
}

// refreshRoutes revalidates the cached routing table against the global
// topology epoch, rebuilding it if any channel changed state. On the
// fault-free fast path this is one atomic load and one comparison.
func (n *Network) refreshRoutes() *routeTable {
	epoch := link.TopologyEpoch()
	if t := n.routes; t != nil && t.epoch == epoch {
		return t
	}
	t := &routeTable{epoch: epoch, healthy: true}
scan:
	for _, nd := range n.Nodes {
		if !nd.Alive() {
			t.healthy = false
			break
		}
		for d := 0; d < n.Dim; d++ {
			if !nd.Sublink(CubeSublink(d)).Up() {
				t.healthy = false
				break scan
			}
		}
	}
	if !t.healthy {
		t.nextHop = n.buildNextHop()
	}
	n.routes = t
	return t
}

// buildNextHop runs one BFS per destination over the live graph and
// records, for every source, the lowest outbound dimension that lies on
// a shortest live path (lowest-dimension tie-break keeps routing
// deterministic). Crashed nodes take no part: their links are down, so
// no live edge touches them.
func (n *Network) buildNextHop() [][]int8 {
	size := len(n.Nodes)
	hop := make([][]int8, size)
	for src := range hop {
		hop[src] = make([]int8, size)
		for dst := range hop[src] {
			hop[src][dst] = -1
		}
	}
	dist := make([]int, size)
	queue := make([]int, 0, size)
	for dst := 0; dst < size; dst++ {
		if !n.Nodes[dst].Alive() {
			continue
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for d := 0; d < n.Dim; d++ {
				v := cube.Neighbor(u, d)
				if dist[v] >= 0 || !n.Nodes[u].Sublink(CubeSublink(d)).Up() {
					continue
				}
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
		for src := 0; src < size; src++ {
			if src == dst || dist[src] < 0 {
				continue
			}
			for d := 0; d < n.Dim; d++ {
				v := cube.Neighbor(src, d)
				if dist[v] == dist[src]-1 && n.Nodes[src].Sublink(CubeSublink(d)).Up() {
					hop[src][dst] = int8(d)
					break
				}
			}
		}
	}
	return hop
}

// Reachable reports whether dst can currently be reached from src over
// live channels. On a healthy network it is always true.
func (n *Network) Reachable(src, dst int) bool {
	if src == dst {
		return n.alive(src)
	}
	if v := n.view; v != nil {
		if v.healthy {
			return true
		}
		return n.alive(src) && n.alive(dst) && v.nextHop[src][dst] >= 0
	}
	t := n.refreshRoutes()
	if t.healthy {
		return true
	}
	return n.alive(src) && n.alive(dst) && t.nextHop[src][dst] >= 0
}
