package comm

import (
	"bytes"
	"strings"
	"testing"

	"tseries/internal/cube"
	"tseries/internal/fparith"
	"tseries/internal/link"
	"tseries/internal/node"
	"tseries/internal/sim"
)

// buildNet constructs a 2^dim-node cube network.
func buildNet(t testing.TB, dim int) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel()
	nodes := make([]*node.Node, cube.Nodes(dim))
	for i := range nodes {
		nodes[i] = node.New(k, i)
	}
	net, err := BuildCube(k, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return k, net
}

// spmd runs fn on every node as its own process and waits for all.
func spmd(k *sim.Kernel, net *Network, fn func(p *sim.Proc, e *Endpoint)) {
	for i := 0; i < net.Size(); i++ {
		e := net.Endpoint(i)
		k.Go(e.nd.Name+"/main", func(p *sim.Proc) { fn(p, e) })
	}
	k.Run(0)
}

func TestNeighborSend(t *testing.T) {
	k, net := buildNet(t, 3)
	var got []byte
	var src int
	k.Go("tx", func(p *sim.Proc) {
		if err := net.Endpoint(0).Send(p, 1, 7, []byte("hi")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) {
		src, got = net.Endpoint(1).Recv(p, 7)
	})
	k.Run(0)
	if src != 0 || !bytes.Equal(got, []byte("hi")) {
		t.Fatalf("src=%d got=%q", src, got)
	}
}

func TestMultiHopRouting(t *testing.T) {
	// 0 → 7 in a 3-cube is three hops (e-cube: via 1 and 3).
	k, net := buildNet(t, 3)
	var arrive sim.Time
	k.Go("tx", func(p *sim.Proc) {
		if err := net.Endpoint(0).Send(p, 7, 9, make([]byte, 100)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) {
		src, payload := net.Endpoint(7).Recv(p, 9)
		if src != 0 || len(payload) != 100 {
			t.Errorf("src=%d len=%d", src, len(payload))
		}
		arrive = p.Now()
	})
	k.Run(0)
	oneHop := link.TransferTime(100 + 16)
	if arrive < sim.Time(3*oneHop) {
		t.Fatalf("3-hop message arrived too early: %v < %v", arrive, 3*oneHop)
	}
	if arrive > sim.Time(3*oneHop+10*sim.Microsecond) {
		t.Fatalf("3-hop message too slow: %v", arrive)
	}
	// Intermediate nodes forwarded.
	if net.Endpoint(1).Forwarded+net.Endpoint(3).Forwarded < 2 {
		t.Fatal("expected store-and-forward hops")
	}
}

func TestHopCostScalesWithDistance(t *testing.T) {
	// O(log N): time grows linearly in Hamming distance.
	k, net := buildNet(t, 4)
	times := map[int]sim.Duration{}
	dsts := []int{1, 3, 7, 15} // distances 1..4
	k.Go("tx", func(p *sim.Proc) {
		for _, d := range dsts {
			if err := net.Endpoint(0).Send(p, d, 5, make([]byte, 50)); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	for _, d := range dsts {
		dst := d
		k.Go("rx", func(p *sim.Proc) {
			start := p.Now()
			net.Endpoint(dst).Recv(p, 5)
			times[dst] = p.Now().Sub(start)
		})
	}
	k.Run(0)
	if !(times[1] < times[3] && times[3] < times[7] && times[7] < times[15]) {
		t.Fatalf("times not monotone in distance: %v", times)
	}
}

func TestBroadcast(t *testing.T) {
	k, net := buildNet(t, 4)
	results := make([][]byte, net.Size())
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		var mine []byte
		if e.ID() == 5 {
			mine = []byte("announcement")
		}
		got, err := e.Broadcast(p, 5, 11, mine)
		if err != nil {
			t.Errorf("bcast on %d: %v", e.ID(), err)
		}
		results[e.ID()] = got
	})
	for id, r := range results {
		if !bytes.Equal(r, []byte("announcement")) {
			t.Fatalf("node %d got %q", id, r)
		}
	}
}

func TestBroadcastLatencyLogarithmic(t *testing.T) {
	// Binomial-tree broadcast completes in ≤ dim sequential hops (plus
	// the root's serial sends), not Size hops.
	k, net := buildNet(t, 4)
	var last sim.Time
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		if _, err := e.Broadcast(p, 0, 3, make([]byte, 10)); err != nil {
			t.Errorf("bcast: %v", err)
		}
		if p.Now() > last {
			last = p.Now()
		}
	})
	hop := link.TransferTime(10 + 16)
	// Root sends to 4 children serially on different links; depth ≤ 4.
	if last > sim.Time(8*hop) {
		t.Fatalf("broadcast took %v, want ≤ %v", last, 8*hop)
	}
}

func TestAllReduceSum(t *testing.T) {
	k, net := buildNet(t, 3)
	results := make([]float64, net.Size())
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		mine := []fparith.F64{fparith.FromInt64(int64(e.ID()))}
		out, err := e.AllReduceF64(p, 20, AddF64, mine)
		if err != nil {
			t.Errorf("allreduce on %d: %v", e.ID(), err)
		}
		results[e.ID()] = out[0].Float64()
	})
	for id, r := range results {
		if r != 28 { // 0+1+…+7
			t.Fatalf("node %d allreduce = %g, want 28", id, r)
		}
	}
}

func TestAllReduceBitIdentical(t *testing.T) {
	// With a fixed combine order the result is bit-identical everywhere,
	// even for rounding-sensitive values.
	k, net := buildNet(t, 3)
	results := make([]fparith.F64, net.Size())
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		v := fparith.FromFloat64(0.1 * float64(e.ID()+1))
		out, err := e.AllReduceF64(p, 20, AddF64, []fparith.F64{v})
		if err != nil {
			t.Errorf("allreduce: %v", err)
		}
		results[e.ID()] = out[0]
	})
	for id := 1; id < len(results); id++ {
		if results[id] != results[0] {
			t.Fatalf("node %d result differs: %x vs %x", id, results[id], results[0])
		}
	}
}

func TestReduceToRoot(t *testing.T) {
	k, net := buildNet(t, 4)
	var rootSum float64
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		mine := []fparith.F64{fparith.FromInt64(1), fparith.FromInt64(int64(e.ID()))}
		out, err := e.ReduceF64(p, 3, 30, AddF64, mine)
		if err != nil {
			t.Errorf("reduce on %d: %v", e.ID(), err)
		}
		if e.ID() == 3 {
			rootSum = out[0].Float64()
			if got := out[1].Float64(); got != 120 { // 0+..+15
				t.Errorf("reduce sum of ids = %g, want 120", got)
			}
		} else if out != nil {
			t.Errorf("non-root %d got a result", e.ID())
		}
	})
	if rootSum != 16 {
		t.Fatalf("count = %g, want 16", rootSum)
	}
}

func TestBarrier(t *testing.T) {
	// No node leaves the barrier before the slowest enters.
	k, net := buildNet(t, 3)
	var slowEnter sim.Time
	exits := make([]sim.Time, net.Size())
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		if e.ID() == 5 {
			p.Wait(3 * sim.Millisecond)
			slowEnter = p.Now()
		}
		if err := e.Barrier(p, 40); err != nil {
			t.Errorf("barrier: %v", err)
		}
		exits[e.ID()] = p.Now()
	})
	for id, x := range exits {
		if x < slowEnter {
			t.Fatalf("node %d left barrier at %v before slowest entered at %v", id, x, slowEnter)
		}
	}
}

func TestScatterGather(t *testing.T) {
	k, net := buildNet(t, 3)
	n := net.Size()
	full := make([]fparith.F64, 4*n)
	for i := range full {
		full[i] = fparith.FromInt64(int64(i * 10))
	}
	collected := make([]fparith.F64, 0)
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		var in []fparith.F64
		if e.ID() == 0 {
			in = full
		}
		chunk, err := e.ScatterF64(p, 0, 50, in)
		if err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if len(chunk) != 4 || chunk[0] != full[e.ID()*4] {
			t.Errorf("node %d chunk wrong: %v", e.ID(), chunk)
		}
		// Double each element locally, then gather back.
		for i := range chunk {
			chunk[i] = fparith.Add64(chunk[i], chunk[i])
		}
		out, err := e.GatherF64(p, 0, 60, chunk)
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if e.ID() == 0 {
			collected = out
		}
	})
	if len(collected) != len(full) {
		t.Fatalf("gathered %d elements", len(collected))
	}
	for i := range full {
		if collected[i].Float64() != 2*full[i].Float64() {
			t.Fatalf("element %d = %g, want %g", i, collected[i].Float64(), 2*full[i].Float64())
		}
	}
}

func TestAllToAll(t *testing.T) {
	k, net := buildNet(t, 2)
	n := net.Size()
	results := make([][]fparith.F64, n)
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		// Node i sends value 100*i+j to node j.
		vals := make([]fparith.F64, n)
		for j := range vals {
			vals[j] = fparith.FromInt64(int64(100*e.ID() + j))
		}
		out, err := e.AllToAllF64(p, 70, vals)
		if err != nil {
			t.Errorf("alltoall: %v", err)
			return
		}
		results[e.ID()] = out
	})
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := float64(100*i + j)
			if got := results[j][i].Float64(); got != want {
				t.Fatalf("node %d slot %d = %g, want %g", j, i, got, want)
			}
		}
	}
}

func TestSelfSend(t *testing.T) {
	k, net := buildNet(t, 1)
	k.Go("self", func(p *sim.Proc) {
		e := net.Endpoint(0)
		if err := e.Send(p, 0, 1, []byte("me")); err != nil {
			t.Errorf("self send: %v", err)
		}
		src, got := e.Recv(p, 1)
		if src != 0 || string(got) != "me" {
			t.Errorf("self recv: %d %q", src, got)
		}
	})
	k.Run(0)
}

func TestBuildErrors(t *testing.T) {
	k := sim.NewKernel()
	nodes := []*node.Node{node.New(k, 0), node.New(k, 1), node.New(k, 2)}
	if _, err := BuildCube(k, nodes); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	k2 := sim.NewKernel()
	wrongOrder := []*node.Node{node.New(k2, 1), node.New(k2, 0)}
	if _, err := BuildCube(k2, wrongOrder); err == nil {
		t.Fatal("out-of-order node ids accepted")
	}
}

func TestTagIsolation(t *testing.T) {
	// Messages with different tags do not cross.
	k, net := buildNet(t, 1)
	k.Go("tx", func(p *sim.Proc) {
		e := net.Endpoint(0)
		if err := e.Send(p, 1, 100, []byte("a")); err != nil {
			t.Errorf("send: %v", err)
		}
		if err := e.Send(p, 1, 200, []byte("b")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) {
		e := net.Endpoint(1)
		_, pb := e.Recv(p, 200)
		_, pa := e.Recv(p, 100)
		if string(pa) != "a" || string(pb) != "b" {
			t.Errorf("tag crosstalk: %q %q", pa, pb)
		}
	})
	k.Run(0)
}

func TestNetworkStatsAndReport(t *testing.T) {
	k, net := buildNet(t, 2)
	k.Go("tx", func(p *sim.Proc) {
		if err := net.Endpoint(0).Send(p, 3, 9, make([]byte, 500)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) { net.Endpoint(3).Recv(p, 9) })
	k.Run(0)
	s := net.Stats()
	// One 2-hop message: two wire transfers, 516 bytes each on the wire.
	if s.Transfers != 2 {
		t.Fatalf("transfers = %d", s.Transfers)
	}
	if s.BytesOnWire != 2*(500+16) {
		t.Fatalf("bytes on wire = %d", s.BytesOnWire)
	}
	if s.MaxWireUtil <= 0 || s.MaxWireUtil > 1 {
		t.Fatalf("max util = %g", s.MaxWireUtil)
	}
	rep := net.Report().String()
	if !strings.Contains(rep, "network traffic") {
		t.Fatalf("report: %s", rep)
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	k, net := buildNet(t, 3)
	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	var src int
	k.Go("tx", func(p *sim.Proc) {
		if err := net.Endpoint(0).SendChunked(p, 7, 80, payload, 1024); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) {
		var err error
		src, got, err = net.Endpoint(7).RecvChunked(p, 80)
		if err != nil {
			t.Errorf("recv: %v", err)
		}
	})
	k.Run(0)
	if src != 0 || !bytes.Equal(got, payload) {
		t.Fatalf("chunked payload corrupted (src=%d, %d bytes)", src, len(got))
	}
}

func TestChunkedPipelinesAcrossHops(t *testing.T) {
	// A 32 KB transfer over 3 hops: monolithic costs ≈3× wire time;
	// 2 KB chunks overlap the hops and approach 1× (+ startup overhead).
	const bytes32k = 32 * 1024
	payload := make([]byte, bytes32k)
	run := func(chunk int) sim.Duration {
		k, net := buildNet(t, 3)
		var done sim.Time
		k.Go("tx", func(p *sim.Proc) {
			var err error
			if chunk == 0 {
				err = net.Endpoint(0).Send(p, 7, 81, payload)
			} else {
				err = net.Endpoint(0).SendChunked(p, 7, 81, payload, chunk)
			}
			if err != nil {
				t.Errorf("send: %v", err)
			}
		})
		k.Go("rx", func(p *sim.Proc) {
			if chunk == 0 {
				net.Endpoint(7).Recv(p, 81)
			} else {
				if _, _, err := net.Endpoint(7).RecvChunked(p, 81); err != nil {
					t.Errorf("recv: %v", err)
				}
			}
			done = p.Now()
		})
		k.Run(0)
		return sim.Duration(done)
	}
	mono := run(0)
	chunked := run(2048)
	if chunked >= mono {
		t.Fatalf("chunking did not help: %v vs %v", chunked, mono)
	}
	// 3 hops → ideal speedup approaches 3 for many chunks; expect > 2.
	if ratio := float64(mono) / float64(chunked); ratio < 2 {
		t.Fatalf("pipelining ratio only %.2f", ratio)
	}
}

func TestChunkedErrors(t *testing.T) {
	k, net := buildNet(t, 1)
	var err error
	k.Go("tx", func(p *sim.Proc) {
		err = net.Endpoint(0).SendChunked(p, 1, 82, []byte{1}, 0)
	})
	k.Go("drain", func(p *sim.Proc) { p.Wait(sim.Nanosecond) })
	k.Run(0)
	if err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

func TestCubeSublinkMappingIsSafe(t *testing.T) {
	// The dimension→sublink map must be injective and avoid the two
	// system-thread sublinks (14, 15).
	seen := map[int]bool{}
	for d := 0; d < cube.MaxDim; d++ {
		s := CubeSublink(d)
		if s < 0 || s > 13 {
			t.Fatalf("dim %d uses reserved sublink %d", d, s)
		}
		if seen[s] {
			t.Fatalf("sublink %d assigned twice", s)
		}
		seen[s] = true
	}
	// The first three dimensions (intramodule) ride distinct physical
	// links so module-internal traffic does not share wires.
	l0, l1, l2 := CubeSublink(0)/4, CubeSublink(1)/4, CubeSublink(2)/4
	if l0 == l1 || l1 == l2 || l0 == l2 {
		t.Fatalf("intramodule dims share physical links: %d %d %d", l0, l1, l2)
	}
}

func TestAllGather(t *testing.T) {
	k, net := buildNet(t, 3)
	n := net.Size()
	results := make([][]fparith.F64, n)
	spmd(k, net, func(p *sim.Proc, e *Endpoint) {
		mine := []fparith.F64{
			fparith.FromInt64(int64(10 * e.ID())),
			fparith.FromInt64(int64(10*e.ID() + 1)),
		}
		out, err := e.AllGatherF64(p, 100, mine)
		if err != nil {
			t.Errorf("allgather on %d: %v", e.ID(), err)
			return
		}
		results[e.ID()] = out
	})
	for id, out := range results {
		if len(out) != 2*n {
			t.Fatalf("node %d gathered %d elements", id, len(out))
		}
		for src := 0; src < n; src++ {
			if out[2*src].Float64() != float64(10*src) || out[2*src+1].Float64() != float64(10*src+1) {
				t.Fatalf("node %d chunk %d wrong: %v %v", id, src, out[2*src], out[2*src+1])
			}
		}
	}
}

func TestAllGatherLogRounds(t *testing.T) {
	// Recursive doubling costs ~dim rounds; time must grow far slower
	// than linearly in node count (naive would send N−1 blocks through
	// the root links).
	run := func(dim int) sim.Duration {
		k, net := buildNet(t, dim)
		var last sim.Time
		spmd(k, net, func(p *sim.Proc, e *Endpoint) {
			if _, err := e.AllGatherF64(p, 100, []fparith.F64{fparith.FromInt64(int64(e.ID()))}); err != nil {
				t.Errorf("allgather: %v", err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
		return sim.Duration(last)
	}
	t2 := run(1)
	t16 := run(4)
	// 8× the nodes; doubling block sizes mean the last round dominates:
	// allow ~8× but not the ~15× of a naive gather+broadcast.
	if float64(t16) > 10*float64(t2) {
		t.Fatalf("allgather scaling poor: %v at 2 nodes, %v at 16", t2, t16)
	}
}
