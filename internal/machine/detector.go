package machine

import (
	"fmt"

	"tseries/internal/module"
	"tseries/internal/sim"
)

// Detector is the machine-level failure detector. It lives (logically)
// on module 0's system board and evaluates, every DetectInterval, the
// heartbeat ledgers of every module — module 0's read locally, the
// others' shipped over the system ring as kindHealth summaries. It
// discovers three failure classes without being told by the fault plan:
//
//   - Crashes: a dead board beats no more. Because all thread traffic
//     flows one way through the module chain, a dead slot also silences
//     every lower slot; the detector therefore confirms only the
//     HIGHEST-indexed silent slot of a module — the cut point — and
//     lets the lower slots speak for themselves once the thread is
//     re-cabled around the corpse.
//   - Hangs: beats keep arriving but the progress word they carry has
//     frozen past HangTimeout on a node that had been advancing.
//   - Lossy links: a channel whose retransmit count climbs faster than
//     LossyRetransmits per detect window is recorded (discovery only —
//     the link layer already masks the loss).
//
// Suspicion is phi-accrual style: silence is measured in units of the
// per-slot EWMA inter-beat gap, so a slot that naturally beats slowly
// (thread congestion) is not condemned by a fixed timeout.
type Detector struct {
	M  *Machine
	R  RecoveryParams
	sv *Supervisor

	susp    int      // suspension depth
	floor   sim.Time // silence baseline after Resume
	started sim.Time

	confirmed map[int]bool // nodes already alarmed this round
	// priorHangs remembers every node ever condemned for a hang. Unlike
	// confirmed it survives Resume: a wrong hang pick is crashed,
	// repaired, and rolled back, which recreates the exact frozen-
	// progress tie that misled the pick — without a memory of past
	// convictions the detector would condemn the same innocent dependent
	// every round and the restart budget would drain without ever
	// reaching the true victim.
	priorHangs map[int]bool
	lastRtx    map[string]int64
	lossy      map[string]bool

	// LossyLinks lists the channels discovered to be persistently lossy.
	LossyLinks []string

	proc *sim.Proc
}

// LossyRetransmits is how many retransmits within one detect window
// mark a channel as persistently lossy.
const LossyRetransmits = 8

// NewDetector builds a detector for the machine using its Spec.Recovery
// thresholds, alarming through the given supervisor.
func NewDetector(m *Machine, sv *Supervisor) *Detector {
	d := &Detector{
		M:          m,
		R:          m.Spec.Recovery,
		sv:         sv,
		confirmed:  map[int]bool{},
		priorHangs: map[int]bool{},
		lastRtx:    map[string]int64{},
		lossy:      map[string]bool{},
	}
	sv.det = d
	return d
}

// DetectedDeath is the detector's verdict that a node is dead, raised
// through the supervisor alarm. Silence is how long the node had been
// quiet when confirmed — the detection latency.
type DetectedDeath struct {
	Node    int
	Silence sim.Duration
}

func (e *DetectedDeath) Error() string {
	return fmt.Sprintf("detector: node %d confirmed dead after %v of silence", e.Node, e.Silence)
}

// DetectedHang is the detector's verdict that a node is wedged: still
// beating, progress frozen for Stall.
type DetectedHang struct {
	Node  int
	Stall sim.Duration
}

func (e *DetectedHang) Error() string {
	return fmt.Sprintf("detector: node %d confirmed hung after %v without progress", e.Node, e.Stall)
}

// Suspend pauses evaluation (nestable). The supervisor suspends around
// checkpoints and the healer around recovery: both flood the module
// threads for seconds, and the delayed beats would read as silence.
func (d *Detector) Suspend() { d.susp++ }

// Resume re-enables evaluation and resets the silence baseline to now,
// so beats delayed during the suspension are forgiven rather than
// accrued.
func (d *Detector) Resume() {
	if d.susp > 0 {
		d.susp--
	}
	if d.susp == 0 {
		d.floor = d.M.K.Now()
		d.confirmed = map[int]bool{}
	}
}

// Start launches the evaluation daemon and begins heartbeat publication
// on every module (heartbeats are opt-in; starting the detector is the
// opt).
func (d *Detector) Start() {
	r := d.R
	d.started = d.M.K.Now()
	d.floor = d.started
	for _, mod := range d.M.Modules {
		mod.StartHeartbeats(r.HeartbeatInterval)
		if mod.Index != 0 && len(d.M.Modules) > 1 {
			mod.StartHealthPublisher(0, r.DetectInterval)
		}
	}
	d.proc = d.M.K.GoDaemon("machine/detector", func(p *sim.Proc) {
		for {
			p.Wait(r.DetectInterval)
			if d.susp > 0 {
				continue
			}
			d.evaluate(p.Now())
		}
	})
}

// Stop kills the evaluation daemon and every heartbeat/publisher
// daemon Start spawned. All of them wake on timers forever, so leaving
// any alive would keep the kernel's event queue non-empty and an
// unbounded Run would never drain.
func (d *Detector) Stop() {
	if d.proc != nil && !d.proc.Done() {
		d.proc.Kill()
	}
	for _, mod := range d.M.Modules {
		mod.StopHeartbeats()
	}
}

// evaluate runs one detection pass over every module's freshest ledger.
func (d *Detector) evaluate(now sim.Time) {
	home := d.M.Modules[0]
	type modLedger struct {
		mod *module.Module
		hs  module.HealthSnapshot
	}
	ledgers := make([]modLedger, 0, len(d.M.Modules))
	// First pass: did ANY image-carrying slot ever advance its progress
	// word? While nothing has, frozen progress means nothing (a workload
	// that never publishes progress must not be condemned); once peers
	// are advancing, a slot that never has is wedged, not slow.
	anyAdvanced := false
	for _, mod := range d.M.Modules {
		var hs module.HealthSnapshot
		if mod.Index == 0 {
			hs = mod.HealthSnapshot()
		} else {
			var ok bool
			hs, ok = home.PeerHealth(mod.Index)
			if !ok || hs.Time < d.floor {
				continue // no fresh summary yet
			}
		}
		for _, s := range hs.Slots {
			if !s.Bypassed && s.Advanced {
				anyAdvanced = true
			}
		}
		ledgers = append(ledgers, modLedger{mod, hs})
	}
	death := false
	var cands []hangCand
	for _, l := range ledgers {
		cs, dd := d.evaluateModule(now, l.mod, l.hs, anyAdvanced)
		death = death || dd
		cands = append(cands, cs...)
	}
	// Confirm at most ONE hang per pass, and none on a pass that
	// confirmed a death. A wedged board freezes not just its own
	// progress: peers blocked on it (a ring receive, a barrier) freeze
	// too, and from the board-level ledger the two are indistinguishable.
	// The heuristic picks the slot that froze EARLIEST (the victim stops
	// first; its dependents only stall when they reach the dependency),
	// breaking ties toward the higher slot as with the cut point. A
	// wrong pick is not fatal — the heal's rollback unblocks every false
	// suspect and the restart budget bounds the rounds — but only
	// because already-condemned slots are deprioritized below: after a
	// rollback the same tie recurs, so a pick without that memory would
	// repeat its mistake forever instead of converging on the victim.
	if !death && len(cands) > 0 {
		pool := cands
		var fresh []hangCand
		for _, c := range cands {
			if !d.priorHangs[c.id] {
				fresh = append(fresh, c)
			}
		}
		if len(fresh) > 0 {
			pool = fresh // only re-condemn a past suspect once no one else is left
		}
		best := pool[0]
		for _, c := range pool[1:] {
			if c.adv < best.adv || (c.adv == best.adv && c.id > best.id) {
				best = c
			}
		}
		d.confirmed[best.id] = true
		d.priorHangs[best.id] = true
		d.M.K.Count("heal.detect_events", 1)
		d.M.K.Count("heal.detect_ns", int64(best.stall/sim.Nanosecond))
		d.M.K.Count("heal.hang_count", 1)
		d.sv.post(&DetectedHang{Node: best.id, Stall: best.stall})
	}
	d.scanLossy()
}

// hangCand is one slot whose progress has been frozen past HangTimeout
// while its beats keep arriving.
type hangCand struct {
	id    int
	adv   sim.Time // effective last-advance baseline
	stall sim.Duration
}

// phi returns the suspicion level of one slot: silence measured in
// units of its smoothed inter-beat gap.
func (d *Detector) phi(now sim.Time, s module.SlotHealth) float64 {
	last := s.LastBeat
	if d.floor > last {
		last = d.floor
	}
	if d.started > last {
		last = d.started
	}
	gap := s.EwmaGap
	if gap <= 0 {
		gap = d.R.HeartbeatInterval
	}
	return float64(now.Sub(last)) / float64(gap)
}

// evaluateModule confirms at most one death (the module's cut point)
// and collects hang candidates for the machine-level pick.
func (d *Detector) evaluateModule(now sim.Time, mod *module.Module, hs module.HealthSnapshot, anyAdvanced bool) ([]hangCand, bool) {
	base := mod.Index * module.NodesPerModule
	var cands []hangCand
	// Walk from the top: the highest-indexed silent slot is the cut
	// point; anything below it is shadowed by the severed thread.
	for slot := len(hs.Slots) - 1; slot >= 0; slot-- {
		s := hs.Slots[slot]
		if s.Bypassed {
			continue
		}
		id := base + slot
		if phi := d.phi(now, s); phi >= d.R.ConfirmPhi {
			if !d.confirmed[id] {
				d.confirmed[id] = true
				sil := d.silence(now, s)
				d.M.K.Count("heal.detect_events", 1)
				d.M.K.Count("heal.detect_ns", int64(sil/sim.Nanosecond))
				d.sv.post(&DetectedDeath{Node: id, Silence: sil})
				return nil, true // lower slots are shadowed: re-evaluate after bypass
			}
			return nil, false
		} else if phi >= d.R.SuspectPhi {
			// Suspected but not yet condemned; it also shadows below.
			return cands, false
		}
		// Slot is beating. Frozen progress while beats still arrive is a
		// hang candidate — either the slot had been advancing and
		// stopped, or peers are advancing and this slot never started (a
		// board wedged before its first phase). Cold spares are exempt:
		// their frozen progress is by design.
		if !s.Spare && (s.Advanced || anyAdvanced) && !d.confirmed[id] {
			adv := s.LastAdvance
			if d.floor > adv {
				adv = d.floor
			}
			if d.started > adv {
				adv = d.started
			}
			if stall := now.Sub(adv); stall > d.R.HangTimeout {
				cands = append(cands, hangCand{id: id, adv: adv, stall: stall})
			}
		}
	}
	return cands, false
}

// silence is the raw quiet time behind a confirmation.
func (d *Detector) silence(now sim.Time, s module.SlotHealth) sim.Duration {
	last := s.LastBeat
	if d.floor > last {
		last = d.floor
	}
	if d.started > last {
		last = d.started
	}
	return now.Sub(last)
}

// scanLossy looks for channels whose retransmit counters climbed by
// more than LossyRetransmits since the last pass. On a partitioned
// machine the counters belong to other shards, so the scan reads the
// barrier-synced retransmit mirror instead of the live links — at most
// one window stale, which is deterministic for a fixed partition.
func (d *Detector) scanLossy() {
	mirror := d.M.rtxMirror
	i := 0
	for _, nd := range d.M.Nodes {
		for li, l := range nd.Links {
			rtx := l.Retransmits
			if mirror != nil {
				rtx = mirror[i]
				i++
			}
			key := fmt.Sprintf("node%d/link%d", nd.ID, li)
			delta := rtx - d.lastRtx[key]
			d.lastRtx[key] = rtx
			if delta > LossyRetransmits && !d.lossy[key] {
				d.lossy[key] = true
				d.LossyLinks = append(d.LossyLinks, key)
				d.M.K.Count("heal.lossy_links", 1)
			}
		}
	}
}
