package machine

import (
	"fmt"

	"tseries/internal/comm"
	"tseries/internal/link"
	"tseries/internal/module"
	"tseries/internal/sim"
)

// PartitionPlan is the logical shard map for a conservative parallel
// run of one machine: which module lands on which kernel shard, and the
// lookahead the shard windows may safely use. The plan is pure
// geometry — it is fully determined by the machine dimension and the
// requested shard count, never by the host — so any two runs with the
// same plan produce identical results regardless of how many host cores
// execute it.
//
// Granularity is the module: the eight nodes of a module share a
// backplane whose intramodule hypercube dimensions (0..2) have no
// guaranteed latency floor usable as lookahead, while every intermodule
// path crosses either a cabled hypercube sublink or the system ring,
// both of which pay at least a DMA startup per frame. Splitting below
// module granularity would force a zero lookahead and serialize the
// windows to nothing.
type PartitionPlan struct {
	Dim     int   // machine dimension (2^Dim nodes)
	Modules int   // module count
	Shards  int   // logical shard count (≤ Modules)
	Assign  []int // Assign[m] = shard owning module m

	// Lookahead is the minimum latency of any cross-shard interaction
	// under this plan: the smaller of the hypercube hop floor
	// (comm.HopLookahead: DMA startup + 16-byte header wire time) and
	// the bare link floor (link.Lookahead) for the ring's raw frames.
	// Single-shard plans have no cross-shard edges and report zero.
	Lookahead sim.Duration
}

// PlanPartition derives the module→shard map for a dim-cube split into
// at most wantShards shards. Shards are contiguous runs of modules of
// near-equal size (hypercube neighbours and ring neighbours stay
// clustered), and the effective shard count is clamped to the module
// count — a 4-cube (two modules) cannot use more than two shards no
// matter the request. wantShards < 1 requests the serial plan.
func PlanPartition(dim, wantShards int) (*PartitionPlan, error) {
	spec, err := SpecFor(dim)
	if err != nil {
		return nil, err
	}
	mods := (spec.Nodes + module.NodesPerModule - 1) / module.NodesPerModule
	shards := wantShards
	if shards < 1 {
		shards = 1
	}
	if shards > mods {
		shards = mods
	}
	p := &PartitionPlan{Dim: dim, Modules: mods, Shards: shards, Assign: make([]int, mods)}
	// Contiguous near-equal runs: the first (mods % shards) shards take
	// one extra module.
	base, extra := mods/shards, mods%shards
	m := 0
	for s := 0; s < shards; s++ {
		n := base
		if s < extra {
			n++
		}
		for i := 0; i < n; i++ {
			p.Assign[m] = s
			m++
		}
	}
	if shards > 1 {
		p.Lookahead = comm.HopLookahead()
		if link.Lookahead < p.Lookahead {
			p.Lookahead = link.Lookahead
		}
	}
	return p, nil
}

// ShardOfNode maps a node id to its owning shard.
func (p *PartitionPlan) ShardOfNode(id int) int {
	return p.Assign[id/module.NodesPerModule]
}

// CrossShardDims lists the hypercube dimensions whose links cross shard
// boundaries under this plan — the dimensions whose traffic must flow
// through staged cross-shard edges in a sharded build. With contiguous
// module runs these are always the highest dimensions.
func (p *PartitionPlan) CrossShardDims() []int {
	var dims []int
	nodes := p.Modules * module.NodesPerModule
	for d := 0; d < p.Dim; d++ {
		crosses := false
		for id := 0; id < nodes; id++ {
			if p.ShardOfNode(id) != p.ShardOfNode(id^(1<<d)) {
				crosses = true
				break
			}
		}
		if crosses {
			dims = append(dims, d)
		}
	}
	return dims
}

// Buildable reports whether the machine builder can realise this plan
// as a sharded simulation, and when it cannot, why. Multi-shard plans
// are buildable as long as every shard boundary falls on an edge with a
// positive latency floor: comm.BuildCubeOn and module.ConnectRingOn
// stage cross-shard hypercube and ring traffic through XChan edges, and
// NewSharded ports the supervisor/detector/heal control plane to shard
// ownership. A plan is refused only when some boundary edge has no
// floor to stage across — splitting below module granularity would put
// a shard boundary on the intramodule backplane (hypercube dims 0..2),
// whose transfers have no guaranteed minimum latency — or when the plan
// is internally inconsistent.
func (p *PartitionPlan) Buildable() (bool, string) {
	if p.Shards <= 1 {
		return true, ""
	}
	if p.Dim > MaxSimDim {
		return false, fmt.Sprintf(
			"machine: %d-cube exceeds the simulator's %d-cube instantiation cap", p.Dim, MaxSimDim)
	}
	if p.Shards > p.Modules {
		return false, fmt.Sprintf(
			"machine: %d shards over %d modules would cut the intramodule backplane "+
				"(hypercube dims 0..2), which has no latency floor to use as lookahead",
			p.Shards, p.Modules)
	}
	if p.Lookahead <= 0 {
		return false, fmt.Sprintf(
			"machine: %d-shard plan has no positive cross-shard lookahead; the staged "+
				"hypercube/ring edges need a latency floor", p.Shards)
	}
	if len(p.Assign) != p.Modules {
		return false, fmt.Sprintf(
			"machine: assignment covers %d of %d modules", len(p.Assign), p.Modules)
	}
	seen := make([]bool, p.Shards)
	for mod, s := range p.Assign {
		if s < 0 || s >= p.Shards {
			return false, fmt.Sprintf(
				"machine: module %d assigned to shard %d outside [0,%d)", mod, s, p.Shards)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return false, fmt.Sprintf("machine: shard %d owns no module", s)
		}
	}
	if p.Assign[0] != 0 {
		return false, fmt.Sprintf(
			"machine: module 0 assigned to shard %d; the control plane (failure detector "+
				"home, supervisor alarm uplinks) anchors on module 0's shard, which must be shard 0",
			p.Assign[0])
	}
	return true, ""
}
