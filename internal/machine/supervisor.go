package machine

import (
	"errors"
	"fmt"
	"sync/atomic"

	"tseries/internal/comm"
	"tseries/internal/fault"
	"tseries/internal/link"
	"tseries/internal/memory"
	"tseries/internal/module"
	"tseries/internal/sim"
	"tseries/internal/stats"
)

// Supervisor is the recovery orchestrator the paper's system ring and
// disk exist to support: it runs a distributed workload under watch,
// and when an unrecoverable fault surfaces — a node crash, a link that
// stays dead past its retransmit budget, a memory parity error — it
// halts the machine, flushes in-flight traffic, restores the last
// consistent snapshot from the module disks, and replays. A workload
// that keeps its progress in checkpointed node memory resumes from the
// last completed phase rather than from scratch.
type Supervisor struct {
	M *Machine

	// MaxRestarts bounds how many rollbacks Run tolerates before
	// giving up.
	MaxRestarts int
	// DrainTime is how long the supervisor lets in-flight DMA and
	// router activity settle after halting, before flushing state.
	DrainTime sim.Duration

	alarm *sim.Chan
	procs []*sim.Proc
	// hung marks boards wedged by a hang fault. The wedge is a property
	// of the BOARD, not of whatever process happened to be running: a
	// body spawned onto a hung board later (a hang that landed between
	// restarts, or during boot) stops dead immediately. It is a slice,
	// not a map, so concurrent same-window writes from different shards
	// of a partitioned machine (always to distinct indices — each shard
	// wedges only its own boards) stay race-free.
	hung      []bool
	lastSnaps []*module.Snapshot
	prevSnaps []*module.Snapshot
	lastCkpt  sim.Time

	// Partitioned-machine uplinks into the shard-0 control plane:
	// up[s]/okUp[s] deliver alarms and ok tokens from shard s into the
	// alarm and okc channels. gen tags ok tokens so leftovers of a
	// halted restart are skipped.
	up   []*sim.XChan
	okc  *sim.Chan
	okUp []*sim.XChan
	gen  int64

	// det, when a Healer is attached, is suspended around checkpoints
	// and recovery so the thread congestion they cause is not read as
	// silence.
	det *Detector

	// Counters for FaultReport.
	Crashes          int64
	Hangs            int64
	ParityFaults     int64
	Rollbacks        int64
	RestoreFallbacks int64

	// LastRecovery is the halt-to-replay time of the most recent
	// rollback (the experiment E17 recovery-time metric).
	LastRecovery sim.Duration
}

// NewSupervisor attaches a recovery supervisor to a machine, taking its
// policy from the machine's Spec.Recovery.
func NewSupervisor(m *Machine) *Supervisor {
	r := m.Spec.Recovery
	sv := &Supervisor{
		M:           m,
		MaxRestarts: r.MaxRestarts,
		DrainTime:   r.DrainTime,
		alarm:       sim.NewChan(m.K, "supervisor/alarm", 1024),
		hung:        make([]bool, m.Spec.Nodes),
	}
	if m.Group != nil {
		// Persistent uplink edges from every non-control shard into the
		// shard-0 alarm and ok channels, with the plan's lookahead.
		shards := m.Group.Shards()
		sv.okc = sim.NewChan(m.K, "supervisor/ok", 4*m.Spec.Nodes)
		sv.up = make([]*sim.XChan, shards)
		sv.okUp = make([]*sim.XChan, shards)
		for s := 1; s < shards; s++ {
			sv.up[s] = m.Group.ConnectInto(s, 0, fmt.Sprintf("sv/alarmup%d", s), m.Plan.Lookahead, sv.alarm)
			sv.okUp[s] = m.Group.ConnectInto(s, 0, fmt.Sprintf("sv/okup%d", s), m.Plan.Lookahead, sv.okc)
		}
	}
	return sv
}

// post raises an alarm from kernel (event-callback) context, where no
// process is running to block on the channel send.
func (sv *Supervisor) post(err error) {
	sv.M.K.Go("supervisor/alarmpost", func(p *sim.Proc) {
		sv.alarm.Send(p, err)
	})
}

// postNode raises an alarm about node id from that node's shard: on a
// partitioned machine the posting process runs on the owning shard's
// kernel and the alarm travels the staged uplink edge.
func (sv *Supervisor) postNode(id int, err error) {
	s := sv.M.shardOf(id)
	if sv.M.Group == nil || s == 0 {
		sv.post(err)
		return
	}
	up := sv.up[s]
	sv.M.Group.Shard(s).Go("supervisor/alarmpost", func(p *sim.Proc) {
		up.Send(p, err)
	})
}

// FaultSink receives fault-injection notifications. The Supervisor is
// the standard sink; a nil sink means pure injection with no observer.
type FaultSink interface {
	// NodeCrashed reports that a node's board died. declared=false is a
	// SILENT crash: the machine is not alarmed, and only a heartbeat
	// failure detector can discover it.
	NodeCrashed(id int, declared bool)
	// NodeHung reports that a node's board wedged: it stops executing
	// (and so stops advancing its progress word) but its links stay up
	// and its heartbeat hardware keeps beating. Always silent.
	NodeHung(id int)
}

// NodeCrashed is the fault injector's notification that a node died.
// The node's application process is killed on the spot — its board
// stopped executing. A declared crash also alarms the supervisor; an
// undeclared one is left for the failure detector to find.
func (sv *Supervisor) NodeCrashed(id int, declared bool) {
	// On a partitioned machine this runs on the crashed node's shard;
	// two shards can take a crash in the same window, so the counter is
	// atomic (its final value is still deterministic — it counts events).
	atomic.AddInt64(&sv.Crashes, 1)
	sv.killBody(id)
	if declared {
		sv.postNode(id, &comm.CrashedError{Node: id})
	}
}

// NodeHung wedges a node: its application process stops dead, but the
// board keeps beating with a frozen progress word. Only a detector
// watching progress can tell this from slow code.
func (sv *Supervisor) NodeHung(id int) {
	atomic.AddInt64(&sv.Hangs, 1)
	sv.hung[id] = true
	sv.killBody(id)
}

func (sv *Supervisor) killBody(id int) {
	if id < len(sv.procs) {
		if pr := sv.procs[id]; pr != nil && !pr.Done() {
			pr.Kill()
		}
	}
}

// Checkpoint snapshots every module now and makes it the rollback
// target, keeping the previous snapshot as a fallback against disk
// corruption.
func (sv *Supervisor) Checkpoint(p *sim.Proc) error {
	// A snapshot floods the module threads for seconds; a detector left
	// watching would read the delayed beats as silence. The detector
	// state lives on shard 0, while the checkpointing process may run
	// anywhere — globalOp flips the suspension with every shard
	// quiescent (inline on a serial machine).
	if sv.det != nil {
		sv.M.globalOp(p, func(sim.Time) { sv.det.Suspend() })
		defer sv.M.globalOp(p, func(sim.Time) { sv.det.Resume() })
	}
	snaps, err := sv.M.SnapshotAll(p)
	if err != nil {
		return err
	}
	sv.prevSnaps, sv.lastSnaps = sv.lastSnaps, snaps
	sv.lastCkpt = p.Now()
	return nil
}

// MaybeCheckpoint checkpoints if at least interval has elapsed since
// the last one. interval <= 0 disables periodic checkpointing.
func (sv *Supervisor) MaybeCheckpoint(p *sim.Proc, interval sim.Duration) error {
	if interval <= 0 || p.Now().Sub(sv.lastCkpt) < interval {
		return nil
	}
	return sv.Checkpoint(p)
}

// Run executes body once per node under supervision: it takes an
// initial checkpoint, spawns one process per node, and waits for all
// of them — or for a fault. A body that returns an error raises an
// alarm (so does the fault injector, for crashes); the supervisor then
// halts everything, rolls the machine back, and replays, up to
// MaxRestarts times.
func (sv *Supervisor) Run(p *sim.Proc, body func(bp *sim.Proc, id int) error) error {
	if sv.M.Group != nil {
		return sv.runSharded(p, body)
	}
	n := sv.M.Spec.Nodes
	if err := sv.Checkpoint(p); err != nil {
		return err
	}
	for restart := 0; ; restart++ {
		okc := sim.NewChan(sv.M.K, fmt.Sprintf("supervisor/ok%d", restart), n)
		sv.procs = make([]*sim.Proc, n)
		for id := 0; id < n; id++ {
			nodeID := id
			sv.procs[id] = sv.M.K.Go(fmt.Sprintf("supervisor/n%d", nodeID), func(bp *sim.Proc) {
				if err := body(bp, nodeID); err != nil {
					sv.noteFault(err)
					sv.alarm.Send(bp, err)
					return
				}
				okc.Send(bp, struct{}{})
			})
		}
		var faultErr error
		for oks := 0; oks < n && faultErr == nil; {
			which, v := sim.Select(p, sv.alarm, okc)
			if which == 0 {
				faultErr = v.(error)
			} else {
				oks++
			}
		}
		if faultErr == nil {
			return nil
		}
		if restart >= sv.MaxRestarts {
			sv.killBodies()
			return fmt.Errorf("supervisor: giving up after %d restarts: %v", restart, faultErr)
		}
		if err := sv.recover(p); err != nil {
			return err
		}
	}
}

// killBodies halts every outstanding body process. Give-up paths must
// call this before abandoning a run: a body left blocked on a dead
// peer's message would wedge the kernel drain as a phantom deadlock.
func (sv *Supervisor) killBodies() {
	for _, pr := range sv.procs {
		if pr != nil && !pr.Done() {
			pr.Kill()
		}
	}
}

// noteFault classifies a body error for the counters. Bodies on
// different shards of a partitioned machine can fault in the same
// window, so the counter is atomic.
func (sv *Supervisor) noteFault(err error) {
	var pe *memory.ParityError
	if errors.As(err, &pe) {
		atomic.AddInt64(&sv.ParityFaults, 1)
	}
}

// recover is the rollback sequence: halt, drain, flush, repair,
// restore, and clear stale alarms.
func (sv *Supervisor) recover(p *sim.Proc) error {
	start := p.Now()
	sv.killBodies()
	// A crash can land mid-checkpoint; abort the snapshot workers too,
	// or a stale collector would swallow the chunks of later snapshots.
	for _, mod := range sv.M.Modules {
		mod.AbortSnapshot()
	}
	// Let in-flight DMA transfers and router forwards run out before
	// flushing, so nothing re-enters the queues behind our back.
	p.Wait(sv.DrainTime)
	sv.M.Net.Flush()
	for _, mod := range sv.M.Modules {
		mod.FlushThread()
	}
	for _, nd := range sv.M.Nodes {
		if !nd.Alive() {
			nd.Repair()
		}
	}
	// Rewind to the newest snapshot; if its blocks rotted on disk,
	// fall back one generation.
	if err := sv.restoreLatest(p); err != nil {
		return err
	}
	sv.Rollbacks++
	sv.drainAlarms()
	sv.LastRecovery = p.Now().Sub(start)
	return nil
}

// okTok is one body-completed token on a partitioned machine, tagged
// with the restart generation so tokens of a halted restart are skipped.
type okTok struct{ gen int64 }

// raise sends a body error toward the shard-0 alarm channel.
func (sv *Supervisor) raise(bp *sim.Proc, shard int, err error) {
	if shard == 0 {
		sv.alarm.Send(bp, err)
		return
	}
	sv.up[shard].Send(bp, err)
}

// okDone sends a body-completed token toward the shard-0 ok channel.
func (sv *Supervisor) okDone(bp *sim.Proc, shard int, gen int64) {
	if shard == 0 {
		sv.okc.Send(bp, okTok{gen: gen})
		return
	}
	sv.okUp[shard].Send(bp, okTok{gen: gen})
}

// runSharded is Run for a partitioned machine: bodies spawn on their
// nodes' own shards inside a Global section, completions and alarms
// travel the staged uplink edges, and the supervising process (which
// must run on shard 0, where the alarm channel lives) collects them.
func (sv *Supervisor) runSharded(p *sim.Proc, body func(bp *sim.Proc, id int) error) error {
	m := sv.M
	n := m.Spec.Nodes
	if err := sv.Checkpoint(p); err != nil {
		return err
	}
	for restart := 0; ; restart++ {
		sv.gen++
		gen := sv.gen
		sv.procs = make([]*sim.Proc, n)
		m.Group.Global(p, func(sim.Time) {
			for id := 0; id < n; id++ {
				nodeID := id
				shard := m.shardOf(id)
				sv.procs[id] = m.Group.Shard(shard).Go(fmt.Sprintf("supervisor/n%d", nodeID), func(bp *sim.Proc) {
					if err := body(bp, nodeID); err != nil {
						sv.noteFault(err)
						sv.raise(bp, shard, err)
						return
					}
					sv.okDone(bp, shard, gen)
				})
			}
		})
		var faultErr error
		for oks := 0; oks < n && faultErr == nil; {
			which, v := sim.Select(p, sv.alarm, sv.okc)
			if which == 0 {
				faultErr = v.(error)
			} else if v.(okTok).gen == gen {
				oks++
			}
		}
		if faultErr == nil {
			return nil
		}
		if restart >= sv.MaxRestarts {
			m.globalOp(p, func(sim.Time) { sv.killBodies() })
			return fmt.Errorf("supervisor: giving up after %d restarts: %v", restart, faultErr)
		}
		if err := sv.recoverSharded(p); err != nil {
			return err
		}
	}
}

// recoverSharded is the rollback sequence on a partitioned machine. The
// halt/flush/repair steps mutate state owned by every shard, so each
// runs in a Global section; the drain wait between them is real
// simulated time, during which in-flight staged frames (bounded by the
// frame transfer time, microseconds against a 500 ms drain) settle.
func (sv *Supervisor) recoverSharded(p *sim.Proc) error {
	m := sv.M
	start := p.Now()
	m.Group.Global(p, func(sim.Time) {
		sv.killBodies()
		for _, mod := range m.Modules {
			mod.AbortSnapshot()
		}
	})
	p.Wait(sv.DrainTime)
	m.Group.Global(p, func(sim.Time) {
		m.Net.Flush()
		for _, mod := range m.Modules {
			mod.FlushThread()
		}
		for _, nd := range m.Nodes {
			if !nd.Alive() {
				nd.Repair()
			}
		}
	})
	if err := sv.restoreLatest(p); err != nil {
		return err
	}
	sv.Rollbacks++
	sv.drainAlarms()
	sv.LastRecovery = p.Now().Sub(start)
	return nil
}

// restoreLatest rewinds to the newest snapshot, falling back one
// generation if its blocks rotted on disk.
func (sv *Supervisor) restoreLatest(p *sim.Proc) error {
	if err := sv.M.RestoreAll(p, sv.lastSnaps); err != nil {
		sv.RestoreFallbacks++
		if sv.prevSnaps == nil {
			return fmt.Errorf("supervisor: restore failed with no older snapshot: %v", err)
		}
		sv.lastSnaps, sv.prevSnaps = sv.prevSnaps, nil
		if err := sv.M.RestoreAll(p, sv.lastSnaps); err != nil {
			return fmt.Errorf("supervisor: fallback restore failed: %v", err)
		}
	}
	return nil
}

func (sv *Supervisor) drainAlarms() {
	for {
		if _, ok := sv.alarm.TryRecv(); !ok {
			break
		}
	}
}

// ArmFaults attaches a fault plan to the machine: the plan's bit-error
// injector goes on every link (node links and module system links),
// and each timed event is scheduled on the kernel. sv may be nil when
// no supervision is wanted (pure injection experiments).
func (m *Machine) ArmFaults(plan *fault.Plan, sv *Supervisor) {
	// The typed-nil guard matters: wrapping a nil *Supervisor in the
	// interface would make sink != nil while every call panics.
	var sink FaultSink
	if sv != nil {
		sink = sv
	}
	m.ArmFaultsSink(plan, sink)
}

// ArmFaultsSink is ArmFaults with an arbitrary fault observer.
//
// On a serial machine the plan itself is the injector on every link: a
// single splitmix64 stream consumed in kernel order. A partitioned
// machine cannot share one stream across shards, so each link gets its
// own stream derived from (seed, link name) — created here, in host
// context, so stream creation never depends on simulation scheduling —
// and each timed event is scheduled on its target's owning shard.
func (m *Machine) ArmFaultsSink(plan *fault.Plan, sink FaultSink) {
	if plan == nil {
		return
	}
	if m.Group == nil {
		for _, nd := range m.Nodes {
			for _, l := range nd.Links {
				l.SetInjector(plan)
			}
		}
		for _, mod := range m.Modules {
			mod.Sys.Link.SetInjector(plan)
		}
		for _, ev := range plan.Events {
			ev := ev
			m.K.At(sim.Time(ev.At), func() { m.applyFault(ev, sink) })
		}
		return
	}
	sp := fault.NewSharded(plan)
	m.faults = sp
	for _, nd := range m.Nodes {
		for _, l := range nd.Links {
			l.SetInjector(sp.ForLink(l.Name))
		}
	}
	for _, mod := range m.Modules {
		mod.Sys.Link.SetInjector(sp.ForLink(mod.Sys.Link.Name))
	}
	for _, ev := range plan.Events {
		ev := ev
		shard := 0
		switch ev.Kind {
		case fault.DiskCorrupt:
			if ev.Mod < len(m.Modules) {
				shard = m.Plan.Assign[ev.Mod]
			}
		default:
			if ev.Node < len(m.Nodes) {
				shard = m.shardOf(ev.Node)
			}
		}
		m.Group.Shard(shard).At(sim.Time(ev.At), func() { m.applyFault(ev, sink) })
	}
}

// applyFault executes one timed fault event.
func (m *Machine) applyFault(ev fault.Event, sink FaultSink) {
	switch ev.Kind {
	case fault.Crash:
		if ev.Node < len(m.Nodes) && m.Nodes[ev.Node].Alive() {
			m.Nodes[ev.Node].Crash()
			if sink != nil {
				sink.NodeCrashed(ev.Node, !ev.Silent)
			}
		}
	case fault.Hang:
		if ev.Node < len(m.Nodes) && m.Nodes[ev.Node].Alive() && sink != nil {
			sink.NodeHung(ev.Node)
		}
	case fault.LinkDown, fault.LinkUp:
		if ev.Node < len(m.Nodes) && ev.Dim < m.Dim {
			// Severing one end kills the channel both ways: neither
			// side sees acknowledges while it is down.
			m.Nodes[ev.Node].Sublink(comm.CubeSublink(ev.Dim)).SetDown(ev.Kind == fault.LinkDown)
		}
	case fault.FlipBit:
		if ev.Node < len(m.Nodes) {
			m.Nodes[ev.Node].Mem.FlipBit(ev.Addr, ev.Bit)
		}
	case fault.DiskCorrupt:
		if ev.Mod < len(m.Modules) {
			m.Modules[ev.Mod].Disk.CorruptNth(ev.Blk)
		}
	}
}

// FaultReport aggregates the fault and recovery counters of the whole
// machine: the plan's injection totals, every link's error accounting,
// every endpoint's routing decisions, the disks' scrub results, and
// the supervisor's rollback history. plan and sv may be nil.
func (m *Machine) FaultReport(plan *fault.Plan, sv *Supervisor) stats.FaultCounters {
	var fc stats.FaultCounters
	if plan != nil {
		fc.FramesCorrupted = plan.FramesCorrupted
		fc.BitsFlipped = plan.BitsFlipped
	}
	if m.faults != nil {
		// Partitioned injection: the per-link streams hold the counts
		// (the plan's own stream was never consumed).
		f, b := m.faults.Totals()
		fc.FramesCorrupted += f
		fc.BitsFlipped += b
	}
	addLink := func(l *link.Link) {
		fc.Detected += l.Corrupted - l.Undetected
		fc.Undetected += l.Undetected
		fc.Retransmits += l.Retransmits
		fc.Timeouts += l.Timeouts
		fc.Drops += l.Drops
	}
	for _, nd := range m.Nodes {
		for _, l := range nd.Links {
			addLink(l)
		}
	}
	for _, mod := range m.Modules {
		addLink(mod.Sys.Link)
		fc.DiskCorrupted += mod.Disk.Corrupted
	}
	for id := 0; id < m.Net.Size(); id++ {
		ep := m.Net.Endpoint(id)
		fc.Detours += ep.Detours
		fc.RouteDrops += ep.RouteDrops
	}
	if sv != nil {
		fc.Crashes = sv.Crashes
		fc.ParityFaults = sv.ParityFaults
		fc.Rollbacks = sv.Rollbacks
		fc.RestoreFallbacks = sv.RestoreFallbacks
	}
	return fc
}
