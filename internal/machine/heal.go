package machine

import (
	"errors"
	"fmt"

	"tseries/internal/comm"
	"tseries/internal/cube"
	"tseries/internal/memory"
	"tseries/internal/module"
	"tseries/internal/node"
	"tseries/internal/sim"
)

// Healer is the self-healing orchestrator: Detector verdicts in,
// remapped machine out. It extends the checkpoint/rollback supervisor
// with spare-node remapping — each module holds back its top
// Spec.Recovery.SpareNodes slots as cold spares, and when a board is
// confirmed dead (by heartbeat silence or frozen progress, no fault
// plan courtesy required) the healer re-cables the module thread around
// the corpse, hands its checkpoint identity to a spare, restores the
// whole machine from the latest snapshot, and replays. When a module's
// spares are exhausted it falls back to degraded operation: the dead
// board is repaired in place at the cost of a BoardSwapTime stall — the
// simulated field-engineer visit.
//
// Workloads run on IMAGES, not boards: image i is the checkpoint
// identity that booted on physical node i. Remapping moves an image to
// a different board; PhysOf tracks where each one lives now.
type Healer struct {
	M   *Machine
	SV  *Supervisor
	Det *Detector

	physOf []int // image id → physical node id, -1 for "never an image"

	// Remaps counts images moved onto spares; Degraded counts in-place
	// repairs after spare exhaustion.
	Remaps   int64
	Degraded int64
	// Events is a human-readable heal log.
	Events []string
}

// BoardSwapTime is the degraded-mode stall for repairing a dead board
// in place once spares are exhausted — the field-engineer visit the
// spare pool exists to avoid.
const BoardSwapTime = 120 * sim.Second

// NewHealer validates the machine's recovery policy, reserves each
// module's top SpareNodes slots as cold spares, and attaches a failure
// detector. It must run before the first snapshot (spares carry no
// checkpoint identity).
func NewHealer(m *Machine, sv *Supervisor) (*Healer, error) {
	if err := m.Spec.Validate(); err != nil {
		return nil, err
	}
	h := &Healer{M: m, SV: sv, physOf: make([]int, len(m.Nodes))}
	for i := range h.physOf {
		h.physOf[i] = i
	}
	nSpares := m.Spec.Recovery.SpareNodes
	for _, mod := range m.Modules {
		k := nSpares
		if k >= len(mod.Nodes) {
			k = len(mod.Nodes) - 1
		}
		base := mod.Index * module.NodesPerModule
		for s := len(mod.Nodes) - k; s < len(mod.Nodes); s++ {
			if err := mod.SetSpare(s); err != nil {
				return nil, err
			}
			h.physOf[base+s] = -1
		}
	}
	h.Det = NewDetector(m, sv)
	return h, nil
}

// Images returns the image ids in Gray-code ring order, skipping the
// spare positions — the logical ring a remapping-aware workload should
// iterate.
func (h *Healer) Images() []int {
	return cube.RingSkipping(h.M.Dim, func(i int) bool { return h.physOf[i] < 0 })
}

// PhysOf returns the physical node currently carrying image img, or -1
// if the image is lost (died with no spare and no repair yet).
func (h *Healer) PhysOf(img int) int {
	if img < 0 || img >= len(h.physOf) {
		return -1
	}
	return h.physOf[img]
}

// NodeOf returns the board currently carrying image img.
func (h *Healer) NodeOf(img int) *node.Node { return h.M.Nodes[h.physOf[img]] }

// EndpointOf returns the message endpoint of the board currently
// carrying image img.
func (h *Healer) EndpointOf(img int) *comm.Endpoint { return h.M.Net.Endpoint(h.physOf[img]) }

// Run executes body once per image under self-healing supervision: an
// initial checkpoint, heartbeats and detection on, one process per
// image on whatever board carries it. Detector verdicts (and declared
// faults) trigger the heal sequence and a replay, up to MaxRestarts
// times.
func (h *Healer) Run(p *sim.Proc, body func(bp *sim.Proc, img int) error) error {
	if h.M.Group != nil {
		return h.runSharded(p, body)
	}
	sv := h.SV
	imgs := h.Images()
	restart := 0
	// The boot checkpoint itself can be torn by a fault (the stall
	// watchdog turns that into an error rather than a wedged machine);
	// heal and retry within the restart budget.
	for {
		err := sv.Checkpoint(p)
		if err == nil {
			break
		}
		if restart >= sv.MaxRestarts {
			return err
		}
		restart++
		if err := h.healRetrying(p, &restart, err); err != nil {
			return err
		}
	}
	h.Det.Start()
	defer h.Det.Stop()
	for ; ; restart++ {
		okc := sim.NewChan(h.M.K, fmt.Sprintf("healer/ok%d", restart), len(imgs))
		sv.procs = make([]*sim.Proc, len(h.M.Nodes))
		for _, img := range imgs {
			img := img
			phys := h.physOf[img]
			if phys < 0 {
				sv.killBodies()
				return fmt.Errorf("healer: image %d has no board", img)
			}
			pr := h.M.K.Go(fmt.Sprintf("healer/img%d", img), func(bp *sim.Proc) {
				if err := body(bp, img); err != nil {
					sv.noteFault(err)
					sv.alarm.Send(bp, err)
					return
				}
				okc.Send(bp, struct{}{})
			})
			sv.procs[phys] = pr
			if sv.hung[phys] {
				// The board wedged before this body ever ran; it stops
				// dead, and only the progress-watching detector can tell.
				pr.Kill()
			}
		}
		var faultErr error
		for oks := 0; oks < len(imgs) && faultErr == nil; {
			which, v := sim.Select(p, sv.alarm, okc)
			if which == 0 {
				faultErr = v.(error)
			} else {
				oks++
			}
		}
		if faultErr == nil {
			return nil
		}
		if restart >= sv.MaxRestarts {
			sv.killBodies()
			return fmt.Errorf("healer: giving up after %d restarts: %v", restart, faultErr)
		}
		if err := h.healRetrying(p, &restart, faultErr); err != nil {
			return err
		}
	}
}

// healRetrying runs the heal sequence, retrying within the restart
// budget when healing is itself interrupted (a second board dying
// mid-restore).
func (h *Healer) healRetrying(p *sim.Proc, restart *int, cause error) error {
	for {
		err := h.heal(p, cause)
		if err == nil {
			return nil
		}
		*restart++
		if *restart > h.SV.MaxRestarts {
			return err
		}
		cause = err
	}
}

// runSharded is Run for a partitioned machine: bodies spawn on the
// shards of the boards carrying their images (inside a Global section,
// so spawn order never races), completions and alarms travel the
// staged uplink edges, and the detector daemons start and stop with
// every shard quiescent.
func (h *Healer) runSharded(p *sim.Proc, body func(bp *sim.Proc, img int) error) error {
	sv, m := h.SV, h.M
	imgs := h.Images()
	restart := 0
	for {
		err := sv.Checkpoint(p)
		if err == nil {
			break
		}
		if restart >= sv.MaxRestarts {
			return err
		}
		restart++
		if err := h.healRetrying(p, &restart, err); err != nil {
			return err
		}
	}
	m.Group.Global(p, func(sim.Time) { h.Det.Start() })
	defer m.Group.Global(p, func(sim.Time) { h.Det.Stop() })
	for ; ; restart++ {
		for _, img := range imgs {
			if h.physOf[img] < 0 {
				m.Group.Global(p, func(sim.Time) { sv.killBodies() })
				return fmt.Errorf("healer: image %d has no board", img)
			}
		}
		sv.gen++
		gen := sv.gen
		sv.procs = make([]*sim.Proc, len(m.Nodes))
		m.Group.Global(p, func(sim.Time) {
			for _, img := range imgs {
				img := img
				phys := h.physOf[img]
				shard := m.shardOf(phys)
				pr := m.Group.Shard(shard).Go(fmt.Sprintf("healer/img%d", img), func(bp *sim.Proc) {
					if err := body(bp, img); err != nil {
						sv.noteFault(err)
						sv.raise(bp, shard, err)
						return
					}
					sv.okDone(bp, shard, gen)
				})
				sv.procs[phys] = pr
				if sv.hung[phys] {
					// The board wedged before this body ever ran; it stops
					// dead, and only the progress-watching detector can tell.
					pr.Kill()
				}
			}
		})
		var faultErr error
		for oks := 0; oks < len(imgs) && faultErr == nil; {
			which, v := sim.Select(p, sv.alarm, sv.okc)
			if which == 0 {
				faultErr = v.(error)
			} else if v.(okTok).gen == gen {
				oks++
			}
		}
		if faultErr == nil {
			return nil
		}
		if restart >= sv.MaxRestarts {
			m.Group.Global(p, func(sim.Time) { sv.killBodies() })
			return fmt.Errorf("healer: giving up after %d restarts: %v", restart, faultErr)
		}
		if err := h.healRetrying(p, &restart, faultErr); err != nil {
			return err
		}
	}
}

// heal is the remap-aware recovery sequence: halt, drain, flush,
// bypass-and-remap (or degrade), restore, replay.
func (h *Healer) heal(p *sim.Proc, cause error) error {
	if h.M.Group != nil {
		return h.healSharded(p, cause)
	}
	sv, m := h.SV, h.M
	start := p.Now()
	h.Det.Suspend()
	defer h.Det.Resume()

	sv.killBodies()
	for _, mod := range m.Modules {
		mod.AbortSnapshot()
	}
	p.Wait(sv.DrainTime)
	m.Net.Flush()
	for _, mod := range m.Modules {
		mod.FlushThread()
	}

	// A confirmed hang is handled like a death: the board is wedged, so
	// take it out of service and let the remap path claim it.
	var hung *DetectedHang
	if errors.As(cause, &hung) {
		if nd := m.Nodes[hung.Node]; nd.Alive() {
			nd.Crash()
		}
		sv.hung[hung.Node] = false
	}

	// Remap every dead, still-cabled board.
	degraded := false
	for phys, nd := range m.Nodes {
		if nd.Alive() {
			continue
		}
		mod := m.Modules[phys/module.NodesPerModule]
		base := mod.Index * module.NodesPerModule
		slot := phys - base
		if mod.Bypassed(slot) {
			continue // already out of the machine
		}
		img := mod.ImageOf(slot)
		if img < 0 {
			// A dead cold spare: nothing to save, just cut it out.
			if err := mod.BypassSlot(slot); err != nil {
				return err
			}
			h.note(p, "spare slot %d of module %d died; bypassed", slot, mod.Index)
			continue
		}
		spare := h.pickSpare(mod)
		if spare < 0 {
			// Spares exhausted: repair in place, pay the engineer visit.
			nd.Repair()
			sv.hung[phys] = false
			degraded = true
			h.Degraded++
			m.K.Count("heal.degraded_count", 1)
			h.note(p, "node %d dead, no spare in module %d: degraded in-place repair", phys, mod.Index)
			continue
		}
		if err := mod.BypassSlot(slot); err != nil {
			return err
		}
		if err := mod.AdoptImage(spare, img); err != nil {
			return err
		}
		if sv.lastSnaps == nil {
			// The boot checkpoint never completed, so there is nothing on
			// disk to restore the image from. The dead board's static RAM
			// still holds its untouched boot state; the service path reads
			// it out and seeds the spare directly.
			p.Wait(sim.Duration(memory.NumRows) * sim.RowAccess)
			m.Nodes[base+spare].Mem.PokeBytes(0, nd.Mem.PeekBytes(0, memory.Bytes))
		}
		sv.hung[phys] = false
		h.physOf[base+img] = base + spare
		h.Remaps++
		m.K.Count("heal.remap_count", 1)
		h.note(p, "node %d dead: image %d remapped to spare slot %d of module %d", phys, base+img, spare, mod.Index)
	}
	if degraded {
		p.Wait(BoardSwapTime)
	}

	if sv.lastSnaps != nil {
		if err := sv.restoreLatest(p); err != nil {
			return err
		}
		sv.Rollbacks++
	}
	sv.drainAlarms()
	sv.LastRecovery = p.Now().Sub(start)
	m.K.Count("heal.recover_ns", int64(sv.LastRecovery/sim.Nanosecond))
	return nil
}

// healSharded is the heal sequence on a partitioned machine. Every
// step that touches state owned by other shards — killing bodies,
// aborting snapshots, flushing, the bypass/remap walk — runs in a
// Global section with all shards quiescent; the timed waits the serial
// path interleaves with the walk (the boot-state service reads, the
// degraded-mode board swap) are hoisted between the sections, since a
// Global body must not block.
func (h *Healer) healSharded(p *sim.Proc, cause error) error {
	sv, m := h.SV, h.M
	start := p.Now()
	m.Group.Global(p, func(sim.Time) { h.Det.Suspend() })
	defer m.Group.Global(p, func(sim.Time) { h.Det.Resume() })

	m.Group.Global(p, func(sim.Time) {
		sv.killBodies()
		for _, mod := range m.Modules {
			mod.AbortSnapshot()
		}
	})
	p.Wait(sv.DrainTime)

	type reseed struct{ corpse, spare int }
	var reseeds []reseed
	degraded := false
	var healErr error
	m.Group.Global(p, func(sim.Time) {
		m.Net.Flush()
		for _, mod := range m.Modules {
			mod.FlushThread()
		}
		var hung *DetectedHang
		if errors.As(cause, &hung) {
			if nd := m.Nodes[hung.Node]; nd.Alive() {
				nd.Crash()
			}
			sv.hung[hung.Node] = false
		}
		for phys, nd := range m.Nodes {
			if nd.Alive() {
				continue
			}
			mod := m.Modules[phys/module.NodesPerModule]
			base := mod.Index * module.NodesPerModule
			slot := phys - base
			if mod.Bypassed(slot) {
				continue
			}
			img := mod.ImageOf(slot)
			if img < 0 {
				if err := mod.BypassSlot(slot); err != nil {
					healErr = err
					return
				}
				h.note(p, "spare slot %d of module %d died; bypassed", slot, mod.Index)
				continue
			}
			spare := h.pickSpare(mod)
			if spare < 0 {
				nd.Repair()
				sv.hung[phys] = false
				degraded = true
				h.Degraded++
				m.K.Count("heal.degraded_count", 1)
				h.note(p, "node %d dead, no spare in module %d: degraded in-place repair", phys, mod.Index)
				continue
			}
			if err := mod.BypassSlot(slot); err != nil {
				healErr = err
				return
			}
			if err := mod.AdoptImage(spare, img); err != nil {
				healErr = err
				return
			}
			if sv.lastSnaps == nil {
				reseeds = append(reseeds, reseed{corpse: phys, spare: base + spare})
			}
			sv.hung[phys] = false
			h.physOf[base+img] = base + spare
			h.Remaps++
			m.K.Count("heal.remap_count", 1)
			h.note(p, "node %d dead: image %d remapped to spare slot %d of module %d", phys, base+img, spare, mod.Index)
		}
	})
	if healErr != nil {
		return healErr
	}
	if len(reseeds) > 0 {
		// Boot checkpoint never completed: pay the service-path read time
		// per corpse, then seed the spares from the dead boards' RAM with
		// the machine quiescent.
		for range reseeds {
			p.Wait(sim.Duration(memory.NumRows) * sim.RowAccess)
		}
		m.Group.Global(p, func(sim.Time) {
			for _, r := range reseeds {
				m.Nodes[r.spare].Mem.PokeBytes(0, m.Nodes[r.corpse].Mem.PeekBytes(0, memory.Bytes))
			}
		})
	}
	if degraded {
		p.Wait(BoardSwapTime)
	}

	if sv.lastSnaps != nil {
		if err := sv.restoreLatest(p); err != nil {
			return err
		}
		sv.Rollbacks++
	}
	sv.drainAlarms()
	sv.LastRecovery = p.Now().Sub(start)
	m.K.Count("heal.recover_ns", int64(sv.LastRecovery/sim.Nanosecond))
	return nil
}

// pickSpare returns the lowest live spare slot of a module, bypassing
// any dead spares it walks over; -1 when the pool is empty.
func (h *Healer) pickSpare(mod *module.Module) int {
	base := mod.Index * module.NodesPerModule
	for _, s := range mod.Spares() {
		if h.M.Nodes[base+s].Alive() {
			return s
		}
		// Dead spare: cut it out so the thread stays whole.
		if err := mod.BypassSlot(s); err == nil {
			h.note(nil, "dead spare slot %d of module %d bypassed", s, mod.Index)
		}
	}
	return -1
}

func (h *Healer) note(p *sim.Proc, format string, args ...interface{}) {
	at := h.M.K.Now()
	if p != nil {
		at = p.Now()
	}
	h.Events = append(h.Events, fmt.Sprintf("[%v] %s", at, fmt.Sprintf(format, args...)))
}
