package machine

import (
	"reflect"
	"strings"
	"testing"

	"tseries/internal/comm"
	"tseries/internal/module"
	"tseries/internal/sim"
)

func TestPlanPartitionGeometry(t *testing.T) {
	cases := []struct {
		dim, want  int
		shards     int
		sizes      []int // modules per shard
		crossShard []int // hypercube dims crossing shards
	}{
		{dim: 6, want: 1, shards: 1, sizes: []int{8}, crossShard: nil},
		{dim: 6, want: 2, shards: 2, sizes: []int{4, 4}, crossShard: []int{5}},
		{dim: 6, want: 4, shards: 4, sizes: []int{2, 2, 2, 2}, crossShard: []int{4, 5}},
		{dim: 6, want: 8, shards: 8, sizes: []int{1, 1, 1, 1, 1, 1, 1, 1}, crossShard: []int{3, 4, 5}},
		{dim: 6, want: 3, shards: 3, sizes: []int{3, 3, 2}, crossShard: []int{3, 4, 5}},
		{dim: 4, want: 8, shards: 2, sizes: []int{1, 1}, crossShard: []int{3}},
		{dim: 3, want: 4, shards: 1, sizes: []int{1}, crossShard: nil},
	}
	for _, c := range cases {
		p, err := PlanPartition(c.dim, c.want)
		if err != nil {
			t.Fatalf("PlanPartition(%d,%d): %v", c.dim, c.want, err)
		}
		if p.Shards != c.shards {
			t.Errorf("dim %d want %d: got %d shards, want %d", c.dim, c.want, p.Shards, c.shards)
		}
		sizes := make([]int, p.Shards)
		prev := 0
		for m, s := range p.Assign {
			sizes[s]++
			if s < prev {
				t.Errorf("dim %d want %d: assignment not contiguous at module %d", c.dim, c.want, m)
			}
			prev = s
		}
		if !reflect.DeepEqual(sizes, c.sizes) {
			t.Errorf("dim %d want %d: shard sizes %v, want %v", c.dim, c.want, sizes, c.sizes)
		}
		if got := p.CrossShardDims(); !reflect.DeepEqual(got, c.crossShard) {
			t.Errorf("dim %d want %d: cross-shard dims %v, want %v", c.dim, c.want, got, c.crossShard)
		}
	}
}

func TestPlanPartitionLookahead(t *testing.T) {
	p, err := PlanPartition(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lookahead <= 0 {
		t.Fatalf("multi-shard plan must derive a positive lookahead, got %v", p.Lookahead)
	}
	// The floor must not exceed either physical bound: a header-only
	// hypercube hop or a bare one-byte link frame.
	if hop := comm.HopLookahead(); p.Lookahead > hop {
		t.Errorf("lookahead %v exceeds hop floor %v", p.Lookahead, hop)
	}
	if p.Lookahead < 5*sim.Microsecond {
		t.Errorf("lookahead %v below the DMA startup — nothing crosses shards faster than a DMA", p.Lookahead)
	}
	serial, _ := PlanPartition(6, 1)
	if serial.Lookahead != 0 {
		t.Errorf("serial plan has no cross-shard edges; lookahead %v, want 0", serial.Lookahead)
	}
}

func TestPlanPartitionDeterministic(t *testing.T) {
	a, _ := PlanPartition(7, 5)
	b, _ := PlanPartition(7, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("plans diverge: %+v vs %+v", a, b)
	}
}

func TestShardOfNodeRespectsModules(t *testing.T) {
	p, _ := PlanPartition(6, 4)
	for id := 0; id < p.Modules*module.NodesPerModule; id++ {
		if p.ShardOfNode(id) != p.Assign[id/module.NodesPerModule] {
			t.Fatalf("node %d mapped off-module", id)
		}
	}
	// All eight nodes of one module land together — intramodule
	// backplane traffic never crosses a shard.
	for m := 0; m < p.Modules; m++ {
		first := p.ShardOfNode(m * module.NodesPerModule)
		for i := 1; i < module.NodesPerModule; i++ {
			if p.ShardOfNode(m*module.NodesPerModule+i) != first {
				t.Fatalf("module %d split across shards", m)
			}
		}
	}
}

func TestMultiShardPlansBuildable(t *testing.T) {
	serial, _ := PlanPartition(6, 1)
	if ok, why := serial.Buildable(); !ok {
		t.Errorf("serial plan must always be buildable: %s", why)
	}
	// Every plan PlanPartition emits — any dimension, any shard count —
	// is buildable: shard boundaries always fall on cabled intermodule
	// edges, which have a latency floor to stage across.
	for _, c := range []struct{ dim, want int }{
		{4, 2}, {5, 4}, {6, 2}, {6, 4}, {6, 8}, {7, 3}, {8, 16},
	} {
		p, err := PlanPartition(c.dim, c.want)
		if err != nil {
			t.Fatalf("PlanPartition(%d,%d): %v", c.dim, c.want, err)
		}
		if ok, why := p.Buildable(); !ok {
			t.Errorf("PlanPartition(%d,%d) must be buildable: %s", c.dim, c.want, why)
		}
	}
}

func TestUnbuildablePlansNameBlockingEdge(t *testing.T) {
	mk := func(mutate func(*PartitionPlan)) *PartitionPlan {
		p, err := PlanPartition(6, 4)
		if err != nil {
			t.Fatal(err)
		}
		mutate(p)
		return p
	}
	cases := []struct {
		name string
		plan *PartitionPlan
		want string // substring the reason must carry, naming the blocking edge
	}{
		{
			// More shards than modules would cut inside a module: the
			// backplane dims (0..2) have no latency floor.
			name: "backplane-cut",
			plan: mk(func(p *PartitionPlan) { p.Shards = p.Modules + 1 }),
			want: "intramodule backplane",
		},
		{
			name: "zero-lookahead",
			plan: mk(func(p *PartitionPlan) { p.Lookahead = 0 }),
			want: "lookahead",
		},
		{
			name: "control-shard-displaced",
			plan: mk(func(p *PartitionPlan) { p.Assign[0], p.Assign[7] = 3, 0 }),
			want: "module 0",
		},
		{
			name: "empty-shard",
			plan: mk(func(p *PartitionPlan) {
				for m := range p.Assign {
					if p.Assign[m] == 3 {
						p.Assign[m] = 2
					}
				}
			}),
			want: "shard 3 owns no module",
		},
		{
			name: "out-of-range",
			plan: mk(func(p *PartitionPlan) { p.Assign[5] = 9 }),
			want: "module 5",
		},
		{
			name: "oversized-cube",
			plan: mk(func(p *PartitionPlan) { p.Dim = MaxSimDim + 1 }),
			want: "instantiation cap",
		},
	}
	for _, c := range cases {
		ok, why := c.plan.Buildable()
		if ok {
			t.Errorf("%s: plan must be refused", c.name)
			continue
		}
		if why == "" {
			t.Errorf("%s: refusal must explain itself", c.name)
		}
		if !strings.Contains(why, c.want) {
			t.Errorf("%s: reason %q does not name the blocking edge (want %q)", c.name, why, c.want)
		}
	}
}
