package machine

import (
	"fmt"

	"tseries/internal/comm"
	"tseries/internal/fault"
	"tseries/internal/module"
	"tseries/internal/node"
	"tseries/internal/sim"
)

// MaxSimDim caps how large a machine the simulator will actually
// instantiate. Node memory is sparse (rows materialize on first write,
// checkpoints dedup at row granularity), so footprint scales with the
// rows a workload touches rather than the configured store, and the
// paper's maximum usable configuration — the 12-cube, 4096 nodes —
// instantiates and runs on an ordinary host. Specifications beyond
// this derive from SpecFor without instantiation, exactly as the paper
// derives large-system properties from module properties.
const MaxSimDim = 12

// Machine is an instantiated, runnable T Series configuration.
type Machine struct {
	Dim     int
	Spec    Spec
	K       *sim.Kernel
	Nodes   []*node.Node
	Modules []*module.Module
	Net     *comm.Network

	// Partitioned-build state (see sharded.go); all nil/zero on a
	// serial machine. K is shard 0's kernel then — module 0's shard,
	// where the control plane (supervisor alarms, failure detector)
	// anchors.
	Group *sim.ShardGroup
	Plan  *PartitionPlan

	ctl     []*sim.Chan    // per-shard control-token inbox
	ctlEdge [][]*sim.XChan // [from][to] staged control edges
	ctlGen  int64          // join generation; stale tokens are ignored

	rtxMirror []int64 // [node*links+i] barrier-synced link retransmit counts
	epochSeen int64   // last topology epoch the shard views were synced at
	faults    *fault.Sharded
}

// New builds a 2^dim-node machine: nodes, hypercube network on sublinks
// 0..dim-1, modules of eight nodes with system threads on sublinks
// 14/15, and the system ring joining the module system boards.
func New(k *sim.Kernel, dim int) (*Machine, error) {
	spec, err := SpecFor(dim)
	if err != nil {
		return nil, err
	}
	if dim > MaxSimDim {
		return nil, fmt.Errorf("machine: %d-cube exceeds the simulator's %d-cube instantiation cap (use SpecFor for larger derivations)", dim, MaxSimDim)
	}
	m := &Machine{Dim: dim, Spec: spec, K: k}
	for i := 0; i < spec.Nodes; i++ {
		m.Nodes = append(m.Nodes, node.New(k, i))
	}
	// Hypercube on the low sublinks.
	net, err := comm.BuildCube(k, m.Nodes)
	if err != nil {
		return nil, err
	}
	m.Net = net
	// Modules: consecutive groups of eight (a 3-subcube each, so the
	// three intramodule hypercube dimensions stay on the backplane).
	for i := 0; i < spec.Nodes; i += module.NodesPerModule {
		end := i + module.NodesPerModule
		if end > spec.Nodes {
			end = spec.Nodes
		}
		mod, err := module.New(k, len(m.Modules), m.Nodes[i:end])
		if err != nil {
			return nil, err
		}
		m.Modules = append(m.Modules, mod)
	}
	// System ring between module system boards.
	if len(m.Modules) > 1 {
		if err := module.ConnectRing(k, m.Modules); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Endpoint returns node id's message-passing endpoint.
func (m *Machine) Endpoint(id int) *comm.Endpoint { return m.Net.Endpoint(id) }

// SnapshotAll checkpoints every module in parallel and blocks until all
// complete. Because each module has its own thread and disk, the elapsed
// time is that of one module — "regardless of configuration".
func (m *Machine) SnapshotAll(p *sim.Proc) ([]*module.Snapshot, error) {
	if m.Group != nil {
		return m.snapshotAllSharded(p)
	}
	snaps := make([]*module.Snapshot, len(m.Modules))
	errs := make([]error, len(m.Modules))
	done := sim.NewChan(m.K, "machine/snapall", len(m.Modules))
	for i, mod := range m.Modules {
		idx, mm := i, mod
		m.K.Go(fmt.Sprintf("snapall/mod%d", idx), func(sp *sim.Proc) {
			snaps[idx], errs[idx] = mm.Snapshot(sp)
			done.Send(sp, struct{}{})
		})
	}
	for range m.Modules {
		done.Recv(p)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return snaps, nil
}

// RestoreAll rewinds every module to the given snapshots, in parallel.
func (m *Machine) RestoreAll(p *sim.Proc, snaps []*module.Snapshot) error {
	if len(snaps) != len(m.Modules) {
		return fmt.Errorf("machine: %d snapshots for %d modules", len(snaps), len(m.Modules))
	}
	if m.Group != nil {
		return m.restoreAllSharded(p, snaps)
	}
	errs := make([]error, len(m.Modules))
	done := sim.NewChan(m.K, "machine/restoreall", len(m.Modules))
	for i, mod := range m.Modules {
		idx, mm := i, mod
		m.K.Go(fmt.Sprintf("restoreall/mod%d", idx), func(sp *sim.Proc) {
			errs[idx] = mm.Restore(sp, snaps[idx])
			done.Send(sp, struct{}{})
		})
	}
	for range m.Modules {
		done.Recv(p)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
