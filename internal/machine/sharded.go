package machine

import (
	"context"
	"errors"
	"fmt"

	"tseries/internal/comm"
	"tseries/internal/link"
	"tseries/internal/module"
	"tseries/internal/node"
	"tseries/internal/sim"
)

// Partitioned machine build. A multi-module machine shards one logical
// shard per module across a sim.ShardGroup: the eight nodes of a module
// (and its system board) live on one kernel, every intermodule path —
// cabled hypercube sublinks and the system ring — crosses shards
// through staged edges with the link-layer latency floor as lookahead,
// exactly the geometry PlanPartition derives. Because the partition is
// fixed by the machine dimension, not by the host, the simulation's
// event order is identical at every worker count; -kernel-shards picks
// only how many host cores execute the fixed shard set.
//
// Shard-ownership rules for the layers above the network:
//
//   - Anything owned by node/module X — its processes, memory, link
//     counters, mailboxes — is touched only from X's shard kernel.
//   - Shard 0 (module 0's shard) anchors the control plane: the
//     supervisor alarm channel, ok-token collection, and the failure
//     detector all live there. Other shards reach them through
//     persistent staged uplink edges.
//   - State that crosses shards without a message — spawn/kill of body
//     processes, snapshot aborts, remap walks, topology repair — runs
//     in ShardGroup.Global sections, which execute at window barriers
//     with every shard quiescent.
//   - Reads of remote state from mid-window code go through
//     barrier-synced copies: the comm netView (liveness/routing), the
//     staged sublink outage mirrors, and the retransmit mirror the
//     lossy-link scanner reads. All of them lag a mid-window change by
//     at most one window, which is deterministic for a fixed partition.

// NewSharded builds a 2^dim-node machine partitioned one shard per
// module across a new shard group bound to ctx. dim must give at least
// two modules (use New for single-module machines).
func NewSharded(ctx context.Context, dim int) (*Machine, error) {
	spec, err := SpecFor(dim)
	if err != nil {
		return nil, err
	}
	if dim > MaxSimDim {
		return nil, fmt.Errorf("machine: %d-cube exceeds the simulator's %d-cube instantiation cap (use SpecFor for larger derivations)", dim, MaxSimDim)
	}
	mods := (spec.Nodes + module.NodesPerModule - 1) / module.NodesPerModule
	if mods < 2 {
		return nil, fmt.Errorf("machine: %d-cube has a single module; use New", dim)
	}
	plan, err := PlanPartition(dim, mods)
	if err != nil {
		return nil, err
	}
	if ok, why := plan.Buildable(); !ok {
		return nil, errors.New(why)
	}
	g := sim.NewShardGroupCtx(ctx, plan.Shards)
	g.SetLookahead(plan.Lookahead)
	m := &Machine{Dim: dim, Spec: spec, K: g.Shard(0), Group: g, Plan: plan}
	for i := 0; i < spec.Nodes; i++ {
		m.Nodes = append(m.Nodes, node.New(g.Shard(plan.ShardOfNode(i)), i))
	}
	net, err := comm.BuildCubeOn(g, m.Nodes, plan.ShardOfNode)
	if err != nil {
		return nil, err
	}
	m.Net = net
	for i := 0; i < spec.Nodes; i += module.NodesPerModule {
		end := i + module.NodesPerModule
		if end > spec.Nodes {
			end = spec.Nodes
		}
		idx := len(m.Modules)
		mod, err := module.New(g.Shard(plan.Assign[idx]), idx, m.Nodes[i:end])
		if err != nil {
			return nil, err
		}
		m.Modules = append(m.Modules, mod)
	}
	if err := module.ConnectRingOn(g, m.Modules, func(i int) int { return plan.Assign[i] }); err != nil {
		return nil, err
	}
	// Control-token mesh: every shard can join operations fanned out to
	// every other shard (the joiner may run on any shard).
	m.ctl = make([]*sim.Chan, plan.Shards)
	for s := range m.ctl {
		m.ctl[s] = sim.NewChan(g.Shard(s), fmt.Sprintf("machine/ctl%d", s), 4*len(m.Modules))
	}
	m.ctlEdge = make([][]*sim.XChan, plan.Shards)
	for a := 0; a < plan.Shards; a++ {
		m.ctlEdge[a] = make([]*sim.XChan, plan.Shards)
		for b := 0; b < plan.Shards; b++ {
			if a == b {
				continue
			}
			m.ctlEdge[a][b] = g.ConnectInto(a, b, fmt.Sprintf("machine/ctl%d-%d", a, b), plan.Lookahead, m.ctl[b])
		}
	}
	m.rtxMirror = make([]int64, len(m.Nodes)*link.LinksPerNode)
	g.SetWindowObserver(&machineObserver{m: m})
	m.syncShardState()
	return m, nil
}

// NewAuto builds the natural machine for dim: single-module dimensions
// build serially on one kernel, multi-module dimensions build sharded
// (one shard per module) with `workers` host workers executing the
// windows. workers < 1 leaves the group's default of one worker — the
// output is identical either way.
func NewAuto(ctx context.Context, dim, workers int) (*Machine, error) {
	spec, err := SpecFor(dim)
	if err != nil {
		return nil, err
	}
	if spec.Nodes <= module.NodesPerModule {
		return New(sim.NewKernelCtx(ctx), dim)
	}
	m, err := NewSharded(ctx, dim)
	if err != nil {
		return nil, err
	}
	if workers > 0 {
		m.Group.SetWorkers(workers)
	}
	return m, nil
}

// Partitioned reports whether the machine was built across a shard
// group.
func (m *Machine) Partitioned() bool { return m.Group != nil }

// Run executes the simulation to the horizon (0 = until drained) and
// returns the end time.
func (m *Machine) Run(horizon sim.Duration) sim.Time {
	if m.Group != nil {
		return m.Group.Run(horizon)
	}
	return m.K.Run(horizon)
}

// Err reports the simulation's terminal error (context cancellation),
// if any.
func (m *Machine) Err() error {
	if m.Group != nil {
		return m.Group.Err()
	}
	return m.K.Err()
}

// SimStats returns the aggregated kernel statistics.
func (m *Machine) SimStats() sim.Stats {
	if m.Group != nil {
		return m.Group.Stats()
	}
	return m.K.Stats()
}

// globalOp runs fn with every shard quiescent: inline for a serial
// machine, in a Global section at the next window barrier for a
// partitioned one.
func (m *Machine) globalOp(p *sim.Proc, fn func(at sim.Time)) {
	if m.Group == nil {
		fn(p.Now())
		return
	}
	m.Group.Global(p, fn)
}

// shardOf maps a node id to its owning shard (0 on a serial machine).
func (m *Machine) shardOf(id int) int {
	if m.Plan == nil {
		return 0
	}
	return m.Plan.ShardOfNode(id)
}

// shardOfProc identifies which shard kernel p runs on.
func (m *Machine) shardOfProc(p *sim.Proc) int {
	k := p.Kernel()
	for s := 0; s < m.Group.Shards(); s++ {
		if m.Group.Shard(s) == k {
			return s
		}
	}
	panic("machine: process not on any shard of this machine")
}

// machineObserver syncs the barrier-frozen shard state after every
// window: the retransmit mirror always, and the topology views (staged
// sublink outage mirrors plus the comm netView) whenever some channel
// changed state since the last sync.
type machineObserver struct{ m *Machine }

func (o *machineObserver) Window(n int64, end sim.Time)     { o.m.syncShardState() }
func (o *machineObserver) Staged(src, dst int, at sim.Time) {}

func (m *Machine) syncShardState() {
	i := 0
	for _, nd := range m.Nodes {
		for _, l := range nd.Links {
			m.rtxMirror[i] = l.Retransmits
			i++
		}
	}
	ep := link.TopologyEpoch()
	if ep == m.epochSeen {
		return
	}
	m.epochSeen = ep
	for _, nd := range m.Nodes {
		for s := 0; s < link.SublinksPerNode; s++ {
			nd.Sublink(s).SyncStagedMirror()
		}
	}
	for _, mod := range m.Modules {
		for s := 0; s < link.SublinksPerLink; s++ {
			mod.Sys.Link.Sublink(s).SyncStagedMirror()
		}
	}
	m.Net.SyncView()
}

// ctlTok is one control-plane join token. Aborted operations can leave
// stale tokens behind (their workers were killed after posting); the
// generation lets the next joiner skip them.
type ctlTok struct{ gen int64 }

// ctlPost sends a join token from shard `from` to the joiner on shard
// `to`.
func (m *Machine) ctlPost(sp *sim.Proc, from, to int, gen int64) {
	if from == to {
		m.ctl[to].Send(sp, ctlTok{gen: gen})
		return
	}
	m.ctlEdge[from][to].Send(sp, ctlTok{gen: gen})
}

// ctlJoin collects `want` tokens of generation gen on p's shard,
// discarding stale ones. Machine-level control operations are issued by
// one process at a time (the same assumption the serial SnapshotAll
// makes), so tokens of a different generation are always leftovers of
// an aborted earlier operation.
func (m *Machine) ctlJoin(p *sim.Proc, shard int, gen int64, want int) {
	for got := 0; got < want; {
		if tok := m.ctl[shard].Recv(p).(ctlTok); tok.gen == gen {
			got++
		}
	}
}

// snapshotAllSharded checkpoints every module in parallel on its own
// shard: the workers are spawned in a Global section (so spawn order
// never races), run on their modules' kernels, and report back through
// the control mesh to whatever shard the caller runs on.
func (m *Machine) snapshotAllSharded(p *sim.Proc) ([]*module.Snapshot, error) {
	shard := m.shardOfProc(p)
	m.ctlGen++
	gen := m.ctlGen
	snaps := make([]*module.Snapshot, len(m.Modules))
	errs := make([]error, len(m.Modules))
	m.Group.Global(p, func(at sim.Time) {
		for i, mod := range m.Modules {
			idx, mm := i, mod
			ms := m.Plan.Assign[idx]
			m.Group.Shard(ms).Go(fmt.Sprintf("snapall/mod%d", idx), func(sp *sim.Proc) {
				snaps[idx], errs[idx] = mm.Snapshot(sp)
				m.ctlPost(sp, ms, shard, gen)
			})
		}
	})
	m.ctlJoin(p, shard, gen, len(m.Modules))
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return snaps, nil
}

// restoreAllSharded rewinds every module in parallel on its own shard.
func (m *Machine) restoreAllSharded(p *sim.Proc, snaps []*module.Snapshot) error {
	shard := m.shardOfProc(p)
	m.ctlGen++
	gen := m.ctlGen
	errs := make([]error, len(m.Modules))
	m.Group.Global(p, func(at sim.Time) {
		for i, mod := range m.Modules {
			idx, mm := i, mod
			ms := m.Plan.Assign[idx]
			m.Group.Shard(ms).Go(fmt.Sprintf("restoreall/mod%d", idx), func(sp *sim.Proc) {
				errs[idx] = mm.Restore(sp, snaps[idx])
				m.ctlPost(sp, ms, shard, gen)
			})
		}
	})
	m.ctlJoin(p, shard, gen, len(m.Modules))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
