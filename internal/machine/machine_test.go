package machine

import (
	"strings"
	"testing"

	"tseries/internal/fparith"
	"tseries/internal/sim"
)

func TestSpecTablePaperRows(t *testing.T) {
	// §III "Larger Configurations".
	// A four-cabinet (64-node) system: 1 GFLOPS aggregate peak, 64 MB
	// user memory, eight system disks.
	s6, err := SpecFor(6)
	if err != nil {
		t.Fatal(err)
	}
	if s6.Nodes != 64 || s6.Cabinets != 4 || s6.Disks != 8 {
		t.Fatalf("6-cube: %+v", s6)
	}
	if g := s6.PeakGFLOPS(); g < 1.0 || g > 1.1 {
		t.Fatalf("6-cube peak = %.3f GFLOPS, want ≈1", g)
	}
	if s6.RAMBytes != 64<<20 {
		t.Fatalf("6-cube RAM = %d, want 64 MB", s6.RAMBytes)
	}
	// Maximum usable: 12-cube, 4096 nodes, 256 cabinets, >65 GFLOPS,
	// 4 GB primary RAM.
	s12, err := SpecFor(12)
	if err != nil {
		t.Fatal(err)
	}
	if s12.Nodes != 4096 || s12.Cabinets != 256 {
		t.Fatalf("12-cube: %+v", s12)
	}
	if g := s12.PeakGFLOPS(); g < 65 || g > 66 {
		t.Fatalf("12-cube peak = %.2f GFLOPS, want >65", g)
	}
	if s12.RAMBytes != 4<<30 {
		t.Fatalf("12-cube RAM = %d, want 4 GB", s12.RAMBytes)
	}
	if !s12.Usable() {
		t.Fatal("12-cube must leave 2 sublinks for I/O")
	}
	// 14-cube is constructible but leaves nothing for I/O.
	s14, err := SpecFor(14)
	if err != nil {
		t.Fatal(err)
	}
	if s14.FreeSublinks != 0 || s14.Usable() {
		t.Fatalf("14-cube: %+v", s14)
	}
	if _, err := SpecFor(15); err == nil {
		t.Fatal("15-cube accepted")
	}
	// Module homogeneity: every size derives from module properties.
	if s12.PeakMFLOPS != s12.Modules*128 {
		t.Fatal("peak does not derive from 128 MFLOPS modules")
	}
	if s12.RAMBytes != int64(s12.Modules)*8<<20 {
		t.Fatal("RAM does not derive from 8 MB modules")
	}
}

func TestSpecString(t *testing.T) {
	s, _ := SpecFor(4)
	if !strings.Contains(s.String(), "16 nodes") && !strings.Contains(s.String(), "   16 nodes") {
		t.Fatalf("spec row: %s", s.String())
	}
}

func TestBuildSmallMachine(t *testing.T) {
	k := sim.NewKernel()
	m, err := New(k, 4) // one cabinet: 16 nodes, 2 modules
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 16 || len(m.Modules) != 2 {
		t.Fatalf("nodes=%d modules=%d", len(m.Nodes), len(m.Modules))
	}
	// The network routes corner to corner.
	var ok bool
	k.Go("tx", func(p *sim.Proc) {
		if err := m.Endpoint(0).Send(p, 15, 1, []byte("across the tesseract")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) {
		src, payload := m.Endpoint(15).Recv(p, 1)
		ok = src == 0 && string(payload) == "across the tesseract"
	})
	k.Run(0)
	if !ok {
		t.Fatal("cross-machine message failed")
	}
}

func TestInstantiationCap(t *testing.T) {
	k := sim.NewKernel()
	if _, err := New(k, MaxSimDim+1); err == nil {
		t.Fatal("oversized instantiation accepted")
	}
}

func TestSnapshotAllParallel(t *testing.T) {
	// Snapshot time must not grow with module count: 2 modules ≈ 1
	// module ≈ 15 s (each has its own thread and disk).
	k := sim.NewKernel()
	m, err := New(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Duration
	k.Go("snap", func(p *sim.Proc) {
		start := p.Now()
		if _, err := m.SnapshotAll(p); err != nil {
			t.Errorf("snapall: %v", err)
		}
		elapsed = p.Now().Sub(start)
	})
	k.Run(0)
	if s := elapsed.Seconds(); s < 13 || s > 17 {
		t.Fatalf("machine snapshot took %.2f s, want ≈15 regardless of configuration", s)
	}
}

func TestMachineCheckpointRestore(t *testing.T) {
	k := sim.NewKernel()
	m, err := New(k, 3) // one module, 8 nodes
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range m.Nodes {
		nd.Mem.PokeF64(0, fparith.FromInt64(int64(i+1)))
	}
	k.Go("cycle", func(p *sim.Proc) {
		snaps, err := m.SnapshotAll(p)
		if err != nil {
			t.Errorf("snap: %v", err)
			return
		}
		for _, nd := range m.Nodes {
			nd.Mem.PokeF64(0, fparith.FromInt64(-1))
		}
		if err := m.RestoreAll(p, snaps); err != nil {
			t.Errorf("restore: %v", err)
		}
	})
	k.Run(0)
	for i, nd := range m.Nodes {
		if got := nd.Mem.PeekF64(0).Float64(); got != float64(i+1) {
			t.Fatalf("node %d = %g after restore", i, got)
		}
	}
}

func TestRingBackup(t *testing.T) {
	k := sim.NewKernel()
	m, err := New(k, 4) // 2 modules in a ring
	if err != nil {
		t.Fatal(err)
	}
	k.Go("backup", func(p *sim.Proc) {
		snaps, err := m.SnapshotAll(p)
		if err != nil {
			t.Errorf("snap: %v", err)
			return
		}
		if err := m.Modules[0].BackupLastSnapshot(p); err != nil {
			t.Errorf("backup: %v", err)
			return
		}
		// Give the final ring block time to land.
		p.Wait(sim.Second)
		_ = snaps
	})
	k.Run(0)
	if !m.Modules[1].HasBackupOf(0, 0, 8) {
		t.Fatal("module 1 does not hold module 0's backup")
	}
}

func TestLargerMachineSmoke(t *testing.T) {
	// A 6-cube (64 nodes, 8 modules): corner-to-corner routing works and
	// the module grouping matches the 3-subcube rule.
	k := sim.NewKernel()
	m, err := New(k, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Modules) != 8 {
		t.Fatalf("modules = %d", len(m.Modules))
	}
	for mi, mod := range m.Modules {
		for li, nd := range mod.Nodes {
			if nd.ID != mi*8+li {
				t.Fatalf("module %d slot %d holds node %d", mi, li, nd.ID)
			}
		}
	}
	var ok bool
	k.Go("tx", func(p *sim.Proc) {
		if err := m.Endpoint(0).Send(p, 63, 1, []byte("corner")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Go("rx", func(p *sim.Proc) {
		src, payload := m.Endpoint(63).Recv(p, 1)
		ok = src == 0 && string(payload) == "corner"
	})
	k.Run(0)
	if !ok {
		t.Fatal("6-cube corner message failed")
	}
}
