// Package machine builds complete T Series configurations: nodes grouped
// eight-to-a-module, modules paired into cabinets (4-cubes), cabinets
// cabled into binary n-cubes up to the architecture's 14-cube limit.
// Because the system is homogeneous — every module identical, with
// identical connections — the specification of any size machine derives
// from the properties of the individual modules (§III).
package machine

import (
	"fmt"

	"tseries/internal/cube"
	"tseries/internal/link"
	"tseries/internal/memory"
	"tseries/internal/module"
	"tseries/internal/node"
)

// Architecture limits.
const (
	// MaxDim: "There are enough links per node to permit a 14-cube to be
	// constructed as the largest T Series configuration" (16 sublinks
	// minus 2 for system communication).
	MaxDim = 14
	// MaxUsableDim: "Using two links per node for external I/O and mass
	// storage systems, a maximum-sized 12-cube consists of 4096 nodes."
	MaxUsableDim = 12
	// IOSublinksReserved per node in usable configurations.
	IOSublinksReserved = 2
	// NodesPerCabinet: two modules (16 nodes) form a cabinet, a 4-cube.
	NodesPerCabinet = 2 * module.NodesPerModule
)

// Spec is the derived specification of a configuration.
type Spec struct {
	Dim          int
	Nodes        int
	Modules      int
	Cabinets     int
	PeakMFLOPS   int
	RAMBytes     int64
	Disks        int
	CubeSublinks int // per node, for hypercube neighbors
	SysSublinks  int // per node, for the system thread
	FreeSublinks int // per node, left for I/O and expansion
}

// SpecFor derives the specification of an n-cube configuration.
func SpecFor(dim int) (Spec, error) {
	if dim < 0 || dim > MaxDim {
		return Spec{}, fmt.Errorf("machine: dimension %d outside 0..%d", dim, MaxDim)
	}
	nodes := cube.Nodes(dim)
	modules := (nodes + module.NodesPerModule - 1) / module.NodesPerModule
	cabinets := (modules + 1) / 2
	free := link.SublinksPerNode - dim - 2
	return Spec{
		Dim:          dim,
		Nodes:        nodes,
		Modules:      modules,
		Cabinets:     cabinets,
		PeakMFLOPS:   nodes * node.PeakMFLOPS,
		RAMBytes:     int64(nodes) * memory.Bytes,
		Disks:        modules,
		CubeSublinks: dim,
		SysSublinks:  2,
		FreeSublinks: free,
	}, nil
}

// Usable reports whether the configuration leaves the two sublinks per
// node the paper reserves for external I/O and mass storage.
func (s Spec) Usable() bool { return s.FreeSublinks >= IOSublinksReserved }

// PeakGFLOPS is the headline rate in GFLOPS.
func (s Spec) PeakGFLOPS() float64 { return float64(s.PeakMFLOPS) / 1000 }

// String renders one config-table row.
func (s Spec) String() string {
	return fmt.Sprintf("%2d-cube: %5d nodes, %4d modules, %4d cabinets, %8d MFLOPS, %6d MB RAM, %4d disks, %2d free sublinks",
		s.Dim, s.Nodes, s.Modules, s.Cabinets, s.PeakMFLOPS, s.RAMBytes>>20, s.Disks, s.FreeSublinks)
}
