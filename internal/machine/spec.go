// Package machine builds complete T Series configurations: nodes grouped
// eight-to-a-module, modules paired into cabinets (4-cubes), cabinets
// cabled into binary n-cubes up to the architecture's 14-cube limit.
// Because the system is homogeneous — every module identical, with
// identical connections — the specification of any size machine derives
// from the properties of the individual modules (§III).
package machine

import (
	"fmt"

	"tseries/internal/cube"
	"tseries/internal/link"
	"tseries/internal/memory"
	"tseries/internal/module"
	"tseries/internal/node"
	"tseries/internal/sim"
)

// Architecture limits.
const (
	// MaxDim: "There are enough links per node to permit a 14-cube to be
	// constructed as the largest T Series configuration" (16 sublinks
	// minus 2 for system communication).
	MaxDim = 14
	// MaxUsableDim: "Using two links per node for external I/O and mass
	// storage systems, a maximum-sized 12-cube consists of 4096 nodes."
	MaxUsableDim = 12
	// IOSublinksReserved per node in usable configurations.
	IOSublinksReserved = 2
	// NodesPerCabinet: two modules (16 nodes) form a cabinet, a 4-cube.
	NodesPerCabinet = 2 * module.NodesPerModule
)

// Spec is the derived specification of a configuration.
type Spec struct {
	Dim          int
	Nodes        int
	Modules      int
	Cabinets     int
	PeakMFLOPS   int
	RAMBytes     int64
	Disks        int
	CubeSublinks int // per node, for hypercube neighbors
	SysSublinks  int // per node, for the system thread
	FreeSublinks int // per node, left for I/O and expansion

	Recovery RecoveryParams
}

// RecoveryParams are the tunable constants of the checkpoint/rollback
// supervisor and the self-healing heartbeat layer. They used to be
// hard-coded in the supervisor; they live on the Spec so a configuration
// carries its own recovery policy, seeded with the paper's figures
// ("about 10 minutes is a good compromise" for the snapshot interval,
// against a snapshot cost of about 15 seconds).
type RecoveryParams struct {
	// CheckpointInterval is the periodic snapshot spacing (§III).
	CheckpointInterval sim.Duration
	// SnapshotCost is the expected full-module snapshot time; validation
	// rejects intervals that would spend more time snapshotting than
	// computing.
	SnapshotCost sim.Duration
	// MaxRestarts bounds how many rollbacks a supervised run tolerates.
	MaxRestarts int
	// DrainTime lets in-flight DMA and router traffic settle after a
	// halt, before state is flushed.
	DrainTime sim.Duration

	// HeartbeatInterval is how often each node publishes liveness along
	// its module's system thread.
	HeartbeatInterval sim.Duration
	// DetectInterval is how often the failure detector evaluates the
	// accrued suspicion of every node.
	DetectInterval sim.Duration
	// SuspectPhi and ConfirmPhi are the phi-accrual thresholds: a node
	// whose suspicion exceeds SuspectPhi is suspected, and the
	// most-downstream suspect of a module is confirmed dead once its
	// suspicion exceeds ConfirmPhi.
	SuspectPhi float64
	ConfirmPhi float64
	// HangTimeout declares a node hung when its published progress
	// counter has not advanced for this long while the rest of the
	// machine moved on.
	HangTimeout sim.Duration
	// SpareNodes are reserved per module, at the top slot indexes, for
	// remapping; logical (workload-visible) positions cover the rest.
	// This is the paper's 12-of-14-cube idea in miniature: physical
	// capacity held back so a confirmed-dead board's identity can move.
	SpareNodes int
}

// DefaultRecovery returns the paper-derived recovery policy.
func DefaultRecovery() RecoveryParams {
	return RecoveryParams{
		CheckpointInterval: 600 * sim.Second,
		SnapshotCost:       15 * sim.Second,
		MaxRestarts:        4,
		DrainTime:          500 * sim.Millisecond,
		HeartbeatInterval:  100 * sim.Millisecond,
		DetectInterval:     250 * sim.Millisecond,
		SuspectPhi:         4,
		ConfirmPhi:         8,
		HangTimeout:        30 * sim.Second,
		SpareNodes:         0,
	}
}

// Validate rejects recovery policies that cannot work: non-positive
// intervals, an interval smaller than the snapshot it pays for,
// thresholds out of order, or a spare reservation that leaves no
// logical nodes.
func (s Spec) Validate() error {
	r := s.Recovery
	if r.CheckpointInterval < 0 {
		return fmt.Errorf("machine: negative checkpoint interval %v", r.CheckpointInterval)
	}
	if r.CheckpointInterval > 0 && r.CheckpointInterval < r.SnapshotCost {
		return fmt.Errorf("machine: checkpoint interval %v is shorter than the %v snapshot it pays for", r.CheckpointInterval, r.SnapshotCost)
	}
	if r.MaxRestarts < 0 {
		return fmt.Errorf("machine: negative restart budget %d", r.MaxRestarts)
	}
	if r.HeartbeatInterval <= 0 || r.DetectInterval <= 0 {
		return fmt.Errorf("machine: heartbeat interval %v and detect interval %v must be positive", r.HeartbeatInterval, r.DetectInterval)
	}
	if r.SuspectPhi <= 0 || r.ConfirmPhi < r.SuspectPhi {
		return fmt.Errorf("machine: phi thresholds suspect=%g confirm=%g must satisfy 0 < suspect ≤ confirm", r.SuspectPhi, r.ConfirmPhi)
	}
	if r.HangTimeout <= 0 {
		return fmt.Errorf("machine: hang timeout %v must be positive", r.HangTimeout)
	}
	if r.SpareNodes < 0 || r.SpareNodes >= module.NodesPerModule {
		return fmt.Errorf("machine: %d spare nodes per module out of range 0..%d", r.SpareNodes, module.NodesPerModule-1)
	}
	return nil
}

// SpecFor derives the specification of an n-cube configuration.
func SpecFor(dim int) (Spec, error) {
	if dim < 0 || dim > MaxDim {
		return Spec{}, fmt.Errorf("machine: dimension %d outside 0..%d", dim, MaxDim)
	}
	nodes := cube.Nodes(dim)
	modules := (nodes + module.NodesPerModule - 1) / module.NodesPerModule
	cabinets := (modules + 1) / 2
	free := link.SublinksPerNode - dim - 2
	return Spec{
		Dim:          dim,
		Nodes:        nodes,
		Modules:      modules,
		Cabinets:     cabinets,
		PeakMFLOPS:   nodes * node.PeakMFLOPS,
		RAMBytes:     int64(nodes) * memory.Bytes,
		Disks:        modules,
		CubeSublinks: dim,
		SysSublinks:  2,
		FreeSublinks: free,
		Recovery:     DefaultRecovery(),
	}, nil
}

// Usable reports whether the configuration leaves the two sublinks per
// node the paper reserves for external I/O and mass storage.
func (s Spec) Usable() bool { return s.FreeSublinks >= IOSublinksReserved }

// PeakGFLOPS is the headline rate in GFLOPS.
func (s Spec) PeakGFLOPS() float64 { return float64(s.PeakMFLOPS) / 1000 }

// String renders one config-table row.
func (s Spec) String() string {
	return fmt.Sprintf("%2d-cube: %5d nodes, %4d modules, %4d cabinets, %8d MFLOPS, %6d MB RAM, %4d disks, %2d free sublinks",
		s.Dim, s.Nodes, s.Modules, s.Cabinets, s.PeakMFLOPS, s.RAMBytes>>20, s.Disks, s.FreeSublinks)
}
