package machine

import (
	"context"
	"fmt"
	"testing"

	"tseries/internal/sim"
)

func TestShardedMachineBuilds(t *testing.T) {
	m, err := NewSharded(context.Background(), 4) // one cabinet: 16 nodes, 2 modules
	if err != nil {
		t.Fatal(err)
	}
	if !m.Partitioned() {
		t.Fatal("dim-4 machine must build partitioned")
	}
	if m.Group.Shards() != 2 || len(m.Modules) != 2 {
		t.Fatalf("shards=%d modules=%d, want 2/2", m.Group.Shards(), len(m.Modules))
	}
	// Corner-to-corner routing crosses the shard boundary (node 15 is
	// module 1's, node 0 module 0's).
	var ok bool
	m.Group.Shard(0).Go("tx", func(p *sim.Proc) {
		if err := m.Endpoint(0).Send(p, 15, 1, []byte("across the tesseract")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	m.Group.Shard(1).Go("rx", func(p *sim.Proc) {
		src, payload := m.Endpoint(15).Recv(p, 1)
		ok = src == 0 && string(payload) == "across the tesseract"
	})
	m.Run(0)
	if !ok {
		t.Fatal("cross-shard message failed")
	}
	if st := m.SimStats(); st.CrossShard == 0 {
		t.Error("expected staged cross-shard traffic")
	}
}

func TestShardedSnapshotAllFromAnyShard(t *testing.T) {
	// SnapshotAll still takes ≈15 s wall (modules snapshot in parallel,
	// each on its own shard) and may be issued from a non-control shard.
	m, err := NewSharded(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Duration
	m.Group.Shard(1).Go("snap", func(p *sim.Proc) {
		start := p.Now()
		if _, err := m.SnapshotAll(p); err != nil {
			t.Errorf("snapall: %v", err)
		}
		elapsed = p.Now().Sub(start)
	})
	m.Run(0)
	if s := elapsed.Seconds(); s < 13 || s > 17 {
		t.Fatalf("machine snapshot took %.2f s, want ≈15 regardless of partition", s)
	}
}

func TestNewAutoPicksGeometry(t *testing.T) {
	serial, err := NewAuto(context.Background(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Partitioned() {
		t.Fatal("single-module dim-3 machine must build serial regardless of workers")
	}
	sharded, err := NewAuto(context.Background(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Partitioned() || sharded.Group.Shards() != 4 {
		t.Fatalf("dim-5 machine: partitioned=%v shards=%d, want 4 shards (one per module)",
			sharded.Partitioned(), sharded.Group.Shards())
	}
}

// TestShardedMachineWorkerInvariant runs the same partitioned exchange
// at worker counts 1, 2, and 4 and demands identical end state: the
// partition is fixed by the geometry, workers only execute it.
func TestShardedMachineWorkerInvariant(t *testing.T) {
	run := func(workers int) string {
		m, err := NewAuto(context.Background(), 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < len(m.Nodes); id++ {
			nodeID := id
			m.Group.Shard(m.Plan.ShardOfNode(id)).Go(fmt.Sprintf("x%d", id), func(p *sim.Proc) {
				peer := nodeID ^ 15 // opposite corner: always cross-module
				ep := m.Endpoint(nodeID)
				if err := ep.Send(p, peer, 2, []byte{byte(nodeID)}); err != nil {
					t.Errorf("node %d send: %v", nodeID, err)
					return
				}
				src, payload := ep.Recv(p, 2)
				if src != peer || len(payload) != 1 || payload[0] != byte(peer) {
					t.Errorf("node %d: got %d bytes from %d", nodeID, len(payload), src)
				}
			})
		}
		end := m.Run(0)
		return fmt.Sprintf("end=%v stats=%+v", end, m.SimStats())
	}
	want := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); got != want {
			t.Errorf("workers=%d diverged:\n%s\nvs\n%s", w, got, want)
		}
	}
}
