package machine

import (
	"tseries/internal/memory"
	"tseries/internal/sim"
)

// MemStats aggregates the host-footprint counters of every node memory
// and module disk in the machine: how much of the configured store the
// sparse row layout actually materialized, and how far checkpoint dedup
// compressed the platters. These are host-side observability numbers —
// they never enter kernel counters or simulated time, so reports that
// publish them stay byte-identical across hosts.
type MemStats struct {
	// Node memories.
	RowsConfigured   int64 // nodes × 1024 rows the hardware has
	RowsMaterialized int64 // rows backed by host storage (written at least once)
	CowCopies        int64 // write-triggered copies of the shared zero row
	MemResidentBytes int64 // host bytes backing node memories (data + parity)

	// Module disks (checkpoint store).
	DiskRowsCopied    int64 // snapshot segments stored as fresh rows
	DiskRowsShared    int64 // snapshot segments that deduped against resident rows
	DiskRowsZero      int64 // all-zero snapshot segments elided entirely
	DiskLogicalBytes  int64 // cumulative logical bytes written to the platters
	DiskResidentBytes int64 // unique payload bytes actually held on the host
}

// MemStats walks the machine's nodes and modules. Call it from the host
// (before Run starts or after it drains); it reads counters without
// synchronizing against in-flight shard workers.
func (m *Machine) MemStats() MemStats {
	var s MemStats
	for _, nd := range m.Nodes {
		s.RowsConfigured += memory.NumRows
		s.RowsMaterialized += nd.Mem.MaterializedRows()
		s.CowCopies += nd.Mem.CowCopies()
		s.MemResidentBytes += nd.Mem.ResidentBytes()
	}
	for _, mod := range m.Modules {
		s.DiskRowsCopied += mod.Disk.RowsCopied
		s.DiskRowsShared += mod.Disk.RowsShared
		s.DiskRowsZero += mod.Disk.RowsZero
		s.DiskLogicalBytes += mod.Disk.BytesWritten
		s.DiskResidentBytes += mod.Disk.ResidentBytes()
	}
	return s
}

// GoNode spawns fn as a process on node id's owning shard kernel — the
// machine's only kernel when serial. A process that touches a node's
// state must run on the kernel that owns it; spawning before Run starts
// is deterministic in either build.
func (m *Machine) GoNode(id int, name string, fn func(*sim.Proc)) {
	if m.Group != nil {
		m.Group.Shard(m.shardOf(id)).Go(name, fn)
		return
	}
	m.K.Go(name, fn)
}
