package machine

import (
	"testing"

	"tseries/internal/sim"
)

func TestLossyLinkScan(t *testing.T) {
	k := sim.NewKernel()
	m, err := New(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewSupervisor(m)
	d := NewDetector(m, sv)

	// A retransmit burst past the budget marks the channel lossy; the
	// verdict is recorded once, not re-raised every pass.
	m.Nodes[1].Links[0].Retransmits += int64(LossyRetransmits) + 12
	d.scanLossy()
	if len(d.LossyLinks) != 1 || d.LossyLinks[0] != "node1/link0" {
		t.Fatalf("LossyLinks = %v, want [node1/link0]", d.LossyLinks)
	}
	if got := k.Stats().Counters["heal.lossy_links"]; got != 1 {
		t.Fatalf("heal.lossy_links = %d, want 1", got)
	}
	d.scanLossy()
	if len(d.LossyLinks) != 1 {
		t.Fatalf("quiet pass re-flagged: %v", d.LossyLinks)
	}

	// Sub-budget drizzle on another channel is retransmit business as
	// usual, not a lossy verdict.
	m.Nodes[2].Links[1].Retransmits += int64(LossyRetransmits) - 2
	d.scanLossy()
	if len(d.LossyLinks) != 1 {
		t.Fatalf("sub-budget channel flagged: %v", d.LossyLinks)
	}

	// A second burst on a new channel accumulates.
	m.Nodes[0].Links[1].Retransmits += 3 * int64(LossyRetransmits)
	d.scanLossy()
	if len(d.LossyLinks) != 2 || d.LossyLinks[1] != "node0/link1" {
		t.Fatalf("LossyLinks = %v, want second entry node0/link1", d.LossyLinks)
	}
}

func TestDetectorSuspendResume(t *testing.T) {
	k := sim.NewKernel()
	m, err := New(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewSupervisor(m)
	d := NewDetector(m, sv)

	// Suspension nests: two Suspends need two Resumes before the floor
	// resets and confirmations clear.
	d.confirmed[3] = true
	d.Suspend()
	d.Suspend()
	d.Resume()
	if len(d.confirmed) != 1 {
		t.Fatal("inner Resume cleared state while still suspended")
	}
	k.Go("tick", func(p *sim.Proc) { p.Wait(sim.Second) })
	k.Run(0)
	d.Resume()
	if d.floor != k.Now() {
		t.Fatalf("floor = %v, want reset to now (%v)", d.floor, k.Now())
	}
	if len(d.confirmed) != 0 {
		t.Fatal("outer Resume kept stale confirmations")
	}
	// A spurious extra Resume must not underflow the depth.
	d.Resume()
	if d.susp != 0 {
		t.Fatalf("suspension depth = %d after extra Resume", d.susp)
	}
}

// TestDetectorConfirmsCutPointOnly drives one evaluation pass against a
// hand-built silence pattern: with slots 1 AND 3 of a module gone quiet,
// only the highest (the cut point, slot 3) may be condemned — the thread
// flows one way, so slot 1's silence proves nothing while 3 is in the
// chain.
func TestDetectorConfirmsCutPointOnly(t *testing.T) {
	k := sim.NewKernel()
	m, err := New(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewSupervisor(m)
	d := NewDetector(m, sv)
	r := m.Spec.Recovery

	// Heartbeats and detection on; crash node 3 silently mid-run, then
	// let the evaluation daemon notice. The controller stops everything
	// so the kernel can drain.
	var verdict error
	k.Go("ctl", func(p *sim.Proc) {
		d.Start()
		p.Wait(2 * sim.Second)
		m.Nodes[3].Crash()
		which, v := sim.Select(p, sv.alarm, sim.NewChan(k, "never", 1))
		if which == 0 {
			verdict = v.(error)
		}
		d.Stop()
	})
	k.Run(0)
	dd, ok := verdict.(*DetectedDeath)
	if !ok {
		t.Fatalf("alarm = %v, want DetectedDeath", verdict)
	}
	if dd.Node != 3 {
		t.Fatalf("condemned node %d, want 3 (the cut point)", dd.Node)
	}
	if dd.Silence <= 0 || dd.Silence > 20*r.HeartbeatInterval {
		t.Fatalf("detection latency %v implausible", dd.Silence)
	}
	if got := k.Stats().Counters["heal.detect_events"]; got != 1 {
		t.Fatalf("heal.detect_events = %d, want exactly the cut point", got)
	}
}
