package link

import "sync"

// framePool recycles frame buffers. Delivered frames pass to the
// receiver and never come back; the pool reclaims frames from the paths
// that would otherwise leak a staged copy — a Send abandoned with a
// DownError, and a master frame displaced by an undetected-corruption
// delivery. It is shared process-wide (kernels in a parallel sweep all
// draw from it), hence sync.Pool rather than a free list.
var framePool sync.Pool

// stageFrame returns a private copy of data for transmission. A pool
// miss — the steady state, since delivered frames never come back — is
// a single append-style allocation (no redundant zeroing), exactly what
// the unpooled path cost.
func stageFrame(data []byte) []byte {
	if bp, ok := framePool.Get().(*[]byte); ok && cap(*bp) >= len(data) {
		f := (*bp)[:len(data)]
		copy(f, data)
		return f
	}
	return append([]byte(nil), data...)
}

// putFrame recycles a buffer obtained from getFrame (nil is a no-op).
// The caller must not retain the slice afterwards.
func putFrame(b []byte) {
	if b == nil {
		return
	}
	framePool.Put(&b)
}
