package link

import (
	"testing"

	"tseries/internal/sim"
)

// nackEvery corrupts every k-th transmission attempt, forcing the
// receiver's checksum to nack it and the sender to retransmit — the
// retry shape the pooled frame buffer targets.
type nackEvery struct {
	k, n int
}

func (inj *nackEvery) Corrupt(sublink string, data []byte) []byte {
	inj.n++
	if inj.n%inj.k != 0 {
		return nil
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0x01
	return bad
}

func benchSend(b *testing.B, size int, inj Injector) {
	k := sim.NewKernel()
	a, dst := pair(k)
	if inj != nil {
		a.SetInjector(inj)
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.ReportAllocs()
	b.SetBytes(int64(size))
	b.ResetTimer()
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := a.Sublink(0).Send(p, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
	k.Go("rx", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			dst.Sublink(0).Recv(p)
		}
	})
	k.Run(0)
}

func BenchmarkSendClean(b *testing.B) { benchSend(b, 1024, nil) }
func BenchmarkSendRetry(b *testing.B) { benchSend(b, 1024, &nackEvery{k: 2}) }
func BenchmarkSendSmall(b *testing.B) { benchSend(b, 16, nil) }
