package link

import (
	"fmt"

	"tseries/internal/sim"
)

// Cross-shard sublink wiring for the conservative parallel kernel
// (sim.ShardGroup). A staged pair behaves like a Connect'ed pair — same
// wire occupancy, same checksum/ack/retransmit protocol, same
// per-frame timing — but the two ends live on different shard kernels,
// so the frame itself travels through an XChan staged edge and the
// sender's view of the remote end's outage state is a mirror refreshed
// at window barriers rather than a direct read.
//
// Everything the send protocol decides — corruption, nack, undetected
// delivery — is already decided on the sender side (the injector runs
// at the transmitting link), so a staged attempt computes the outcome
// locally at wire-grant time and posts the delivery with the frame's
// own transfer time; the receiver sees an ordinary inbox message. The
// one genuinely remote input, "has the peer stopped acknowledging",
// comes from the barrier-synced mirror: a sender learns of a remote
// outage at most one window (= one lookahead) late, which is
// deterministic for a fixed partition and worker-invariant.
type stagedPeer struct {
	x      *sim.XChan // delivers Messages into the remote end's inbox
	remote *Sublink   // the far end; touched only at barriers (mirror sync)

	// downMirror is the barrier-synced copy of remote.down. It is read
	// by the owning shard mid-window and written only at barriers, when
	// every shard is quiescent.
	downMirror bool
}

// ConnectStaged cross-wires two sublinks on different shard kernels
// into a bidirectional channel. ab must be a staged edge delivering
// into b's inbox, ba one delivering into a's inbox (built with
// ShardGroup.ConnectInto and a latency of at most Lookahead — the
// conservative floor every frame's real transfer time meets). Both
// sublinks must be unconnected.
func ConnectStaged(a, b *Sublink, ab, ba *sim.XChan) error {
	if a == b {
		return fmt.Errorf("link: cannot connect %s to itself", a.Name())
	}
	if a.peer != nil || b.peer != nil || a.staged != nil || b.staged != nil {
		return fmt.Errorf("link: sublink already connected (%s ↔ %s)", a.Name(), b.Name())
	}
	if ab == nil || ba == nil {
		return fmt.Errorf("link: staged pair %s ↔ %s needs both edges", a.Name(), b.Name())
	}
	if ab.Latency() > Lookahead || ba.Latency() > Lookahead {
		return fmt.Errorf("link: staged pair %s ↔ %s: edge latency above the link lookahead %v", a.Name(), b.Name(), Lookahead)
	}
	a.staged = &stagedPeer{x: ab, remote: b}
	b.staged = &stagedPeer{x: ba, remote: a}
	topoEpoch.Add(1)
	return nil
}

// StagedConnected reports whether the sublink is the local end of a
// cross-shard pair.
func (s *Sublink) StagedConnected() bool { return s.staged != nil }

// SyncStagedMirror refreshes the sender-side outage mirror from the
// remote end's actual state. It must be called only when both shards
// are quiescent — at a ShardGroup window barrier — and returns whether
// the mirror changed (callers bump routing epochs on change).
func (s *Sublink) SyncStagedMirror() bool {
	if s.staged == nil {
		return false
	}
	d := s.staged.remote.down
	if d == s.staged.downMirror {
		return false
	}
	s.staged.downMirror = d
	return true
}

// attemptStaged is the cross-shard variant of attempt: same timing and
// outcome logic, but the remote outage state comes from the mirror and
// the delivery is staged through the edge at wire-grant time, arriving
// exactly one frame-transfer-time later — as it would on a local wire.
func (s *Sublink) attemptStaged(p *sim.Proc, frame []byte, sum uint32) (delivered, acked bool, err error) {
	l := s.parent
	if s.down || s.staged.downMirror {
		l.wire.Use(p, DMAStartup+AckTimeout)
		l.Timeouts++
		return false, false, nil
	}
	dur := DMAStartup + sim.Duration(len(frame))*ByteTime
	var nacked bool
	l.wire.UseFunc(p, dur, func() {
		l.BytesSent += int64(len(frame))
		l.k.Count("link.bytes", int64(len(frame)))
		l.Transfers++
		data := frame
		if l.injector != nil {
			if bad := l.injector.Corrupt(s.Name(), frame); bad != nil {
				l.Corrupted++
				if Checksum(bad) != sum {
					nacked = true
					return
				}
				l.Undetected++
				data = bad
				putFrame(frame)
			}
		}
		s.staged.x.PostDelayed(Message{Data: data, From: s.Name(), Checksum: sum}, dur)
	})
	if nacked {
		return false, true, nil
	}
	return true, true, nil
}
