package link

import (
	"bytes"
	"testing"

	"tseries/internal/sim"
)

// pair builds two connected physical links (sublink 0 of each wired
// together) for a test.
func pair(k *sim.Kernel) (*Link, *Link) {
	a := NewLink(k, "a/link0")
	b := NewLink(k, "b/link0")
	if err := Connect(a.Sublink(0), b.Sublink(0)); err != nil {
		panic(err)
	}
	return a, b
}

func TestEffectiveBandwidth(t *testing.T) {
	// Paper: "maximum unidirectional bandwidth of over 0.5 MB/s per link".
	bw := EffectiveBandwidth() / 1e6
	if bw <= 0.5 || bw >= 0.65 {
		t.Fatalf("link bandwidth = %.4f MB/s, want just over 0.5", bw)
	}
	// Four links: "over 4 MB/s" total (both directions).
	total := 4 * 2 * bw
	if total <= 4 {
		t.Fatalf("aggregate = %.2f MB/s, want > 4", total)
	}
}

func TestSendRecv(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	payload := []byte("hello hypercube")
	var got []byte
	var sendDone, recvDone sim.Time
	k.Go("tx", func(p *sim.Proc) {
		if err := a.Sublink(0).Send(p, payload); err != nil {
			t.Errorf("send: %v", err)
		}
		sendDone = p.Now()
	})
	k.Go("rx", func(p *sim.Proc) {
		got = b.Sublink(0).Recv(p)
		recvDone = p.Now()
	})
	k.Run(0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
	want := sim.Time(TransferTime(len(payload)))
	if sendDone != want || recvDone != want {
		t.Fatalf("send/recv done at %v/%v, want %v", sendDone, recvDone, want)
	}
}

func TestDMAStartupDominatesSmallTransfers(t *testing.T) {
	// A 1-byte message costs ~5µs startup + 1.7µs wire.
	d := TransferTime(1)
	if d < 6*sim.Microsecond || d > 7*sim.Microsecond {
		t.Fatalf("1-byte transfer = %v", d)
	}
	// The fixed cost is amortised at 64 KB.
	big := TransferTime(64 * 1024)
	perByte := big.Seconds() / (64 * 1024)
	if bw := 1 / perByte / 1e6; bw < 0.57 || bw > 0.58 {
		t.Fatalf("large-transfer bandwidth = %f MB/s", bw)
	}
}

func TestSublinksShareWire(t *testing.T) {
	// Two sublinks of the same physical link sending together take twice
	// as long as one: the multiplexing divides the bandwidth.
	k := sim.NewKernel()
	a := NewLink(k, "a/link0")
	b := NewLink(k, "b/link0")
	c := NewLink(k, "c/link0")
	if err := Connect(a.Sublink(0), b.Sublink(0)); err != nil {
		t.Fatal(err)
	}
	if err := Connect(a.Sublink(1), c.Sublink(0)); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	var done []sim.Time
	for i := 0; i < 2; i++ {
		sl := a.Sublink(i)
		k.Go("tx", func(p *sim.Proc) {
			if err := sl.Send(p, data); err != nil {
				t.Errorf("send: %v", err)
			}
			done = append(done, p.Now())
		})
	}
	k.Go("rx1", func(p *sim.Proc) { b.Sublink(0).Recv(p) })
	k.Go("rx2", func(p *sim.Proc) { c.Sublink(0).Recv(p) })
	k.Run(0)
	one := sim.Time(TransferTime(1000))
	if done[0] != one || done[1] != 2*one {
		t.Fatalf("done = %v, want %v and %v", done, one, 2*one)
	}
}

func TestSeparateLinksRunInParallel(t *testing.T) {
	k := sim.NewKernel()
	a0 := NewLink(k, "a/link0")
	a1 := NewLink(k, "a/link1")
	b0 := NewLink(k, "b/link0")
	b1 := NewLink(k, "b/link1")
	if err := Connect(a0.Sublink(0), b0.Sublink(0)); err != nil {
		t.Fatal(err)
	}
	if err := Connect(a1.Sublink(0), b1.Sublink(0)); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	for _, l := range []*Link{a0, a1} {
		sl := l.Sublink(0)
		k.Go("tx", func(p *sim.Proc) {
			if err := sl.Send(p, data); err != nil {
				t.Errorf("send: %v", err)
			}
		})
	}
	k.Go("rx1", func(p *sim.Proc) { b0.Sublink(0).Recv(p) })
	k.Go("rx2", func(p *sim.Proc) { b1.Sublink(0).Recv(p) })
	end := k.Run(0)
	if end != sim.Time(TransferTime(1000)) {
		t.Fatalf("parallel links took %v, want %v", end, TransferTime(1000))
	}
}

func TestBidirectional(t *testing.T) {
	// The two directions of a connected sublink pair are independent
	// wires: simultaneous sends in both directions fully overlap.
	k := sim.NewKernel()
	a, b := pair(k)
	data := make([]byte, 2000)
	k.Go("a→b", func(p *sim.Proc) {
		if err := a.Sublink(0).Send(p, data); err != nil {
			t.Errorf("a: %v", err)
		}
	})
	k.Go("b→a", func(p *sim.Proc) {
		if err := b.Sublink(0).Send(p, data); err != nil {
			t.Errorf("b: %v", err)
		}
	})
	k.Go("rxa", func(p *sim.Proc) { a.Sublink(0).Recv(p) })
	k.Go("rxb", func(p *sim.Proc) { b.Sublink(0).Recv(p) })
	end := k.Run(0)
	if end != sim.Time(TransferTime(2000)) {
		t.Fatalf("bidirectional took %v, want %v", end, TransferTime(2000))
	}
}

func TestErrors(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "lone")
	var errUnconnected, errEmpty error
	a, b := pair(k)
	_ = b
	k.Go("p", func(p *sim.Proc) {
		errUnconnected = l.Sublink(0).Send(p, []byte{1})
		errEmpty = a.Sublink(0).Send(p, nil)
	})
	k.Run(0)
	if errUnconnected == nil {
		t.Fatal("unconnected send accepted")
	}
	if errEmpty == nil {
		t.Fatal("empty send accepted")
	}
	if err := Connect(a.Sublink(0), l.Sublink(0)); err == nil {
		t.Fatal("double connect accepted")
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := a.Sublink(0).Send(p, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	var got []byte
	k.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, b.Sublink(0).Recv(p)[0])
		}
	})
	k.Run(0)
	for i := 0; i < 10; i++ {
		if got[i] != byte(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestSenderBufferReusable(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	buf := []byte{42}
	var got byte
	k.Go("tx", func(p *sim.Proc) {
		if err := a.Sublink(0).Send(p, buf); err != nil {
			t.Errorf("send: %v", err)
		}
		buf[0] = 99 // mutate after send; receiver must still see 42
	})
	k.Go("rx", func(p *sim.Proc) {
		p.Wait(100 * sim.Microsecond)
		got = b.Sublink(0).Recv(p)[0]
	})
	k.Run(0)
	if got != 42 {
		t.Fatalf("got %d, want 42 (no aliasing)", got)
	}
}

func TestCountersAndUtilization(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := a.Sublink(0).Send(p, make([]byte, 100)); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	k.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			b.Sublink(0).Recv(p)
		}
	})
	k.Run(0)
	if a.Transfers != 3 || a.BytesSent != 300 {
		t.Fatalf("counters: %d transfers, %d bytes", a.Transfers, a.BytesSent)
	}
	if u := a.Wire().Utilization(); u <= 0.9 || u > 1.0 {
		t.Fatalf("wire utilization = %g (back-to-back sends should keep it busy)", u)
	}
	if b.Transfers != 0 {
		t.Fatal("receiver transferred nothing yet its counter moved")
	}
}

func TestPeerAndConnected(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	if !a.Sublink(0).Connected() || a.Sublink(0).Peer() != b.Sublink(0) {
		t.Fatal("peer wiring wrong")
	}
	if a.Sublink(1).Connected() {
		t.Fatal("unconnected sublink claims a peer")
	}
	if got := a.Sublink(2).Name(); got != "a/link0/sub2" {
		t.Fatalf("name = %q", got)
	}
}

func TestTryRecvAndReady(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	if _, ok := b.Sublink(0).TryRecv(); ok {
		t.Fatal("TryRecv on empty inbox succeeded")
	}
	k.Go("tx", func(p *sim.Proc) {
		if err := a.Sublink(0).Send(p, []byte{9}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Run(0)
	if !b.Sublink(0).Ready() {
		t.Fatal("inbox should be ready")
	}
	if msg, ok := b.Sublink(0).TryRecv(); !ok || msg[0] != 9 {
		t.Fatalf("TryRecv = %v %v", msg, ok)
	}
}
