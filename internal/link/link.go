// Package link models the T Series inter-node communication hardware:
// four bidirectional serial links per control processor, each carrying
// every 8-bit byte with two synchronisation bits and one stop bit and
// requiring two acknowledge bits from the receiver — a maximum
// unidirectional payload bandwidth of just over 0.5 MB/s per link, over
// 4 MB/s for the four links together. Transfers run by DMA with a startup
// time of about 5 µs.
//
// Each physical link is multiplexed four ways, giving 16 bidirectional
// sublinks per node that divide the parent link's bandwidth. Sublinks are
// the unit of wiring: the machine builder cross-connects sublink pairs to
// realise the hypercube, the system-board thread, and external I/O.
package link

import (
	"fmt"

	"tseries/internal/sim"
)

// Protocol constants.
const (
	// BitsPerByte is the wire cost of one payload byte: 8 data + 2 sync
	// + 1 stop, plus the 2-bit acknowledge from the receiver.
	BitsPerByte = 8 + 2 + 1 + 2
	// SublinksPerLink is the multiplexing factor of each physical link.
	SublinksPerLink = 4
	// LinksPerNode is the number of physical links on a control processor.
	LinksPerNode = 4
	// SublinksPerNode is the total logical channel count (16).
	SublinksPerNode = LinksPerNode * SublinksPerLink
)

// BitTime is one serial bit period. The nominal signalling rate is
// 7.5 Mbit/s, so a byte costs 13 bit times ≈ 1.733 µs and the payload
// bandwidth is ≈ 0.577 MB/s — the paper's "over 0.5 MB/s per link".
const BitTime = 133333 * sim.Picosecond

// ByteTime is the wire time of one payload byte including the handshake.
const ByteTime = BitsPerByte * BitTime

// DMAStartup is the fixed cost of arming a link DMA transfer.
const DMAStartup = 5 * sim.Microsecond

// EffectiveBandwidth reports the steady-state unidirectional payload
// bandwidth of one link in bytes per second.
func EffectiveBandwidth() float64 {
	return 1 / ByteTime.Seconds()
}

// Message is one DMA transfer's payload.
type Message struct {
	Data []byte
	From string // sending sublink, for tracing
}

// Link is one node's driver for a single physical serial link. Its
// outbound wire is a serial resource: the four outbound sublinks
// multiplexed onto it divide the available bandwidth. (The inbound
// direction is owned by the remote ends' outbound wires.)
type Link struct {
	Name string
	k    *sim.Kernel
	wire *sim.Resource
	subs [SublinksPerLink]*Sublink

	BytesSent int64
	Transfers int64
}

// Sublink is one of the four multiplexed logical channels of a physical
// link. It is connected point-to-point to a peer sublink on another node.
type Sublink struct {
	parent *Link
	index  int
	peer   *Sublink
	inbox  *sim.Chan
}

// NewLink creates a physical link and its four sublinks.
func NewLink(k *sim.Kernel, name string) *Link {
	l := &Link{Name: name, k: k, wire: sim.NewResource(k, name+"/wire", 1)}
	for i := range l.subs {
		l.subs[i] = &Sublink{
			parent: l,
			index:  i,
			inbox:  sim.NewChan(k, fmt.Sprintf("%s/sub%d/in", name, i), 1024),
		}
	}
	return l
}

// Sublink returns logical channel i (0..3).
func (l *Link) Sublink(i int) *Sublink { return l.subs[i] }

// Wire exposes the outbound serial resource (for utilisation reports).
func (l *Link) Wire() *sim.Resource { return l.wire }

// Connect cross-wires two sublinks into a bidirectional channel. Both
// must be unconnected.
func Connect(a, b *Sublink) error {
	if a.peer != nil || b.peer != nil {
		return fmt.Errorf("link: sublink already connected (%s ↔ %s)", a.Name(), b.Name())
	}
	a.peer, b.peer = b, a
	return nil
}

// Name identifies the sublink for tracing.
func (s *Sublink) Name() string {
	return fmt.Sprintf("%s/sub%d", s.parent.Name, s.index)
}

// Connected reports whether the sublink has a peer.
func (s *Sublink) Connected() bool { return s.peer != nil }

// Peer returns the remote sublink, or nil.
func (s *Sublink) Peer() *Sublink { return s.peer }

// Send transfers data to the peer sublink, blocking the caller for the
// DMA startup plus the serial wire time. Sublinks sharing a physical
// link queue for the wire, dividing its bandwidth.
func (s *Sublink) Send(p *sim.Proc, data []byte) error {
	if s.peer == nil {
		return fmt.Errorf("link: %s is not connected", s.Name())
	}
	if len(data) == 0 {
		return fmt.Errorf("link: empty transfer on %s", s.Name())
	}
	s.parent.wire.Acquire(p)
	p.Wait(DMAStartup + sim.Duration(len(data))*ByteTime)
	s.parent.wire.Release()
	s.parent.BytesSent += int64(len(data))
	s.parent.Transfers++
	// Deliver a copy: the sender may reuse its buffer immediately.
	msg := Message{Data: append([]byte(nil), data...), From: s.Name()}
	s.peer.inbox.Send(p, msg)
	return nil
}

// Recv blocks until a message arrives on this sublink and returns its
// payload.
func (s *Sublink) Recv(p *sim.Proc) []byte {
	return s.inbox.Recv(p).(Message).Data
}

// TryRecv returns a payload if one is already queued.
func (s *Sublink) TryRecv() ([]byte, bool) {
	v, ok := s.inbox.TryRecv()
	if !ok {
		return nil, false
	}
	return v.(Message).Data, true
}

// Ready reports whether a Recv would not block.
func (s *Sublink) Ready() bool { return s.inbox.Ready() }

// Inbox exposes the underlying channel for ALT/select constructs.
func (s *Sublink) Inbox() *sim.Chan { return s.inbox }

// TransferTime predicts the wall time of an uncontended n-byte transfer.
func TransferTime(n int) sim.Duration {
	return DMAStartup + sim.Duration(n)*ByteTime
}
