// Package link models the T Series inter-node communication hardware:
// four bidirectional serial links per control processor, each carrying
// every 8-bit byte with two synchronisation bits and one stop bit and
// requiring two acknowledge bits from the receiver — a maximum
// unidirectional payload bandwidth of just over 0.5 MB/s per link, over
// 4 MB/s for the four links together. Transfers run by DMA with a startup
// time of about 5 µs.
//
// Each physical link is multiplexed four ways, giving 16 bidirectional
// sublinks per node that divide the parent link's bandwidth. Sublinks are
// the unit of wiring: the machine builder cross-connects sublink pairs to
// realise the hypercube, the system-board thread, and external I/O.
package link

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"tseries/internal/sim"
)

// topoEpoch counts wiring and outage transitions across every link in
// the process. Routing layers cache reachability tables against this
// value: as long as it is unchanged, no channel anywhere has gone up,
// down, or been rewired, so a cached table is still valid. It is a
// process-wide atomic rather than per-kernel state so that it can be
// bumped from SetDown without threading a kernel reference through
// every call site; a bump caused by an unrelated kernel merely forces a
// harmless table rebuild.
var topoEpoch atomic.Int64

// TopologyEpoch returns the current wiring/outage generation.
func TopologyEpoch() int64 { return topoEpoch.Load() }

// Protocol constants.
const (
	// BitsPerByte is the wire cost of one payload byte: 8 data + 2 sync
	// + 1 stop, plus the 2-bit acknowledge from the receiver.
	BitsPerByte = 8 + 2 + 1 + 2
	// SublinksPerLink is the multiplexing factor of each physical link.
	SublinksPerLink = 4
	// LinksPerNode is the number of physical links on a control processor.
	LinksPerNode = 4
	// SublinksPerNode is the total logical channel count (16).
	SublinksPerNode = LinksPerNode * SublinksPerLink
)

// BitTime is one serial bit period. The nominal signalling rate is
// 7.5 Mbit/s, so a byte costs 13 bit times ≈ 1.733 µs and the payload
// bandwidth is ≈ 0.577 MB/s — the paper's "over 0.5 MB/s per link".
const BitTime = 133333 * sim.Picosecond

// ByteTime is the wire time of one payload byte including the handshake.
const ByteTime = BitsPerByte * BitTime

// DMAStartup is the fixed cost of arming a link DMA transfer.
const DMAStartup = 5 * sim.Microsecond

// Lookahead is the guaranteed minimum latency of any inter-node
// transfer: even a zero-payload frame pays the DMA startup plus one
// byte of wire time. A conservative parallel scheduler (sim.ShardGroup)
// may safely use it as the cross-shard synchronization window for any
// partition whose shards interact only through links — no event sent
// through a link at time t can affect another node before t+Lookahead.
const Lookahead = DMAStartup + ByteTime

// Reliability constants. The wire protocol already carries two
// acknowledge bits per byte; on top of that each DMA frame carries a
// checksum, and the receiver's final acknowledge doubles as an
// ack/nack for the whole frame. A sender that sees a nack (checksum
// failure) or no acknowledge at all (dead wire or dead peer) retries
// with exponential backoff, and gives up with a DownError once
// MaxSendAttempts transmissions have failed.
const (
	// MaxSendAttempts bounds retransmission of one frame.
	MaxSendAttempts = 8
	// AckTimeout is how long a sender waits for the first acknowledge
	// bits before declaring an attempt lost — a small multiple of the
	// byte time, since acknowledges are interleaved per byte.
	AckTimeout = 64 * ByteTime
	// MaxBackoff caps the exponential retransmit backoff.
	MaxBackoff = 8 * sim.Millisecond
)

// RetryBackoff is the wait before retransmit attempt n+1 (n ≥ 1).
func RetryBackoff(attempt int) sim.Duration {
	d := AckTimeout << uint(attempt-1)
	if d > MaxBackoff {
		d = MaxBackoff
	}
	return d
}

// Checksum is the per-frame integrity check the receiver applies
// before acknowledging a DMA transfer.
func Checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// Injector lets a fault plan damage frames in flight. Corrupt is
// called once per transmission attempt with the payload; it returns
// nil when the frame crosses clean, or a damaged copy.
type Injector interface {
	Corrupt(sublink string, data []byte) []byte
}

// DownError reports that a transfer was abandoned after exhausting its
// retransmit budget: the wire is cut or the peer has stopped
// acknowledging.
type DownError struct {
	Sublink  string
	Attempts int
}

func (e *DownError) Error() string {
	return fmt.Sprintf("link: %s down (no acknowledge after %d attempts)", e.Sublink, e.Attempts)
}

// IsDown reports whether err is (or wraps) a DownError.
func IsDown(err error) bool {
	var de *DownError
	return errors.As(err, &de)
}

// EffectiveBandwidth reports the steady-state unidirectional payload
// bandwidth of one link in bytes per second.
func EffectiveBandwidth() float64 {
	return 1 / ByteTime.Seconds()
}

// Message is one DMA transfer's payload.
type Message struct {
	Data     []byte
	From     string // sending sublink, for tracing
	Checksum uint32 // frame checksum as transmitted
}

// Link is one node's driver for a single physical serial link. Its
// outbound wire is a serial resource: the four outbound sublinks
// multiplexed onto it divide the available bandwidth. (The inbound
// direction is owned by the remote ends' outbound wires.)
type Link struct {
	Name     string
	k        *sim.Kernel
	wire     *sim.Resource
	subs     [SublinksPerLink]*Sublink
	injector Injector

	BytesSent int64
	Transfers int64

	// Fault accounting.
	Corrupted   int64 // frames damaged on the wire
	Undetected  int64 // damaged frames the checksum failed to catch
	Retransmits int64 // extra transmissions after a nack or timeout
	Timeouts    int64 // attempts lost to a dead wire or dead peer
	Drops       int64 // sends abandoned with a DownError
}

// SetInjector attaches a fault injector to every transfer on this
// link's outbound wire (nil detaches).
func (l *Link) SetInjector(inj Injector) { l.injector = inj }

// SetDown severs (true) or restores (false) all four sublinks at once —
// what a node crash or a physical cable fault does.
func (l *Link) SetDown(down bool) {
	changed := false
	for _, sub := range l.subs {
		if sub.down != down {
			sub.down = down
			changed = true
		}
	}
	if changed {
		topoEpoch.Add(1)
	}
}

// Sublink is one of the four multiplexed logical channels of a physical
// link. It is connected point-to-point to a peer sublink on another node.
type Sublink struct {
	parent *Link
	index  int
	peer   *Sublink
	staged *stagedPeer // cross-shard peer (see staged.go); nil when local
	inbox  *sim.Chan
	down   bool // outage: this end no longer drives or acknowledges
}

// NewLink creates a physical link and its four sublinks.
func NewLink(k *sim.Kernel, name string) *Link {
	l := &Link{Name: name, k: k, wire: sim.NewResource(k, name+"/wire", 1)}
	for i := range l.subs {
		l.subs[i] = &Sublink{
			parent: l,
			index:  i,
			inbox:  sim.NewChan(k, fmt.Sprintf("%s/sub%d/in", name, i), 1024),
		}
	}
	return l
}

// Sublink returns logical channel i (0..3).
func (l *Link) Sublink(i int) *Sublink { return l.subs[i] }

// Wire exposes the outbound serial resource (for utilisation reports).
func (l *Link) Wire() *sim.Resource { return l.wire }

// Connect cross-wires two sublinks into a bidirectional channel. Both
// must be unconnected and distinct — a sublink cannot be wired to
// itself.
func Connect(a, b *Sublink) error {
	if a == b {
		return fmt.Errorf("link: cannot connect %s to itself", a.Name())
	}
	if a.peer != nil || b.peer != nil || a.staged != nil || b.staged != nil {
		return fmt.Errorf("link: sublink already connected (%s ↔ %s)", a.Name(), b.Name())
	}
	a.peer, b.peer = b, a
	topoEpoch.Add(1)
	return nil
}

// Rewire disconnects a and b from their current peers (if any) and
// cross-wires them to each other. This is the maintenance operation
// behind thread bypass: when a node on a module's system thread dies,
// the chain is re-cabled around it by rewiring its upstream neighbor's
// outbound sublink directly to its downstream neighbor's inbound one.
// The orphaned peers are left unconnected.
func Rewire(a, b *Sublink) error {
	if a == b {
		return fmt.Errorf("link: cannot rewire %s to itself", a.Name())
	}
	if a.peer != nil {
		a.peer.peer = nil
		a.peer = nil
	}
	if b.peer != nil {
		b.peer.peer = nil
		b.peer = nil
	}
	return Connect(a, b)
}

// Name identifies the sublink for tracing.
func (s *Sublink) Name() string {
	return fmt.Sprintf("%s/sub%d", s.parent.Name, s.index)
}

// Connected reports whether the sublink has a peer (local or staged).
func (s *Sublink) Connected() bool { return s.peer != nil || s.staged != nil }

// Peer returns the remote sublink, or nil.
func (s *Sublink) Peer() *Sublink { return s.peer }

// SetDown severs (true) or restores (false) this end of the channel.
// While either end is down the wire carries no acknowledges, so every
// send attempt on the pair times out.
func (s *Sublink) SetDown(down bool) {
	if s.down != down {
		s.down = down
		topoEpoch.Add(1)
	}
}

// Down reports whether this end has been severed.
func (s *Sublink) Down() bool { return s.down }

// Up reports whether the channel is usable end to end: connected and
// neither side severed. For a staged (cross-shard) pair the remote
// side's state is the barrier-synced mirror.
func (s *Sublink) Up() bool {
	if s.staged != nil {
		return !s.down && !s.staged.downMirror
	}
	return s.peer != nil && !s.down && !s.peer.down
}

// Send transfers data to the peer sublink, blocking the caller for the
// DMA startup plus the serial wire time. Sublinks sharing a physical
// link queue for the wire, dividing its bandwidth.
//
// Delivery is reliable against wire corruption: each frame carries a
// checksum, a corrupted frame is nacked by the receiver and
// retransmitted at once (the nack proves the peer is alive), and a
// frame that draws no acknowledge at all (severed wire, crashed peer)
// is retried with exponential backoff until MaxSendAttempts silent
// attempts, after which Send returns a DownError. With no fault
// injector attached and both ends up, the timing and behaviour are
// identical to a bare transfer.
func (s *Sublink) Send(p *sim.Proc, data []byte) error {
	if s.peer == nil && s.staged == nil {
		return fmt.Errorf("link: %s is not connected", s.Name())
	}
	if len(data) == 0 {
		return fmt.Errorf("link: empty transfer on %s", s.Name())
	}
	l := s.parent
	// The frame is staged once, at the first attempt that actually
	// drives the wire: one copy of the payload (so the caller may reuse
	// its buffer immediately) and one checksum, both shared by every
	// retransmission of this Send. Ownership passes to the receiver on
	// delivery; a frame that is never delivered goes back to the pool.
	var frame []byte
	var sum uint32
	timeouts := 0
	for {
		if frame == nil && s.Up() {
			frame = stageFrame(data)
			sum = Checksum(frame)
		}
		delivered, acked, err := s.attempt(p, frame, sum)
		if delivered {
			return err
		}
		l.Retransmits++
		if acked {
			// Nack: the receiver rejected a damaged frame but is
			// plainly alive, so retransmit immediately and do not
			// charge the outage budget.
			continue
		}
		timeouts++
		if timeouts >= MaxSendAttempts {
			l.Drops++
			putFrame(frame)
			return &DownError{Sublink: s.Name(), Attempts: timeouts}
		}
		p.Wait(RetryBackoff(timeouts))
	}
}

// attempt performs one transmission of the staged frame. delivered means
// the frame reached the peer (or the send must not be retried); acked
// distinguishes a nack (checksum reject from a live peer) from silence
// (dead wire). frame is nil exactly when the channel is down.
func (s *Sublink) attempt(p *sim.Proc, frame []byte, sum uint32) (delivered, acked bool, err error) {
	if s.staged != nil {
		return s.attemptStaged(p, frame, sum)
	}
	l := s.parent
	if s.down || s.peer.down {
		// The DMA arms and drives the first bytes, but no acknowledge
		// bits ever come back.
		l.wire.Use(p, DMAStartup+AckTimeout)
		l.Timeouts++
		return false, false, nil
	}
	l.wire.Use(p, DMAStartup+sim.Duration(len(frame))*ByteTime)
	l.BytesSent += int64(len(frame))
	l.k.Count("link.bytes", int64(len(frame)))
	l.Transfers++
	if l.injector != nil {
		// Corrupt never mutates its argument — it returns nil or a
		// fresh damaged copy — so the master frame stays pristine for
		// retransmission.
		if bad := l.injector.Corrupt(s.Name(), frame); bad != nil {
			l.Corrupted++
			if Checksum(bad) != sum {
				// Receiver's checksum rejects the frame: nack.
				return false, true, nil
			}
			// The corruption slipped past the checksum — delivered
			// wrong, counted as an uncorrected error. The damaged copy
			// (owned by the injector call) goes to the receiver; the
			// clean master is recycled.
			l.Undetected++
			s.peer.inbox.Send(p, Message{Data: bad, From: s.Name(), Checksum: sum})
			putFrame(frame)
			return true, true, nil
		}
	}
	s.peer.inbox.Send(p, Message{Data: frame, From: s.Name(), Checksum: sum})
	return true, true, nil
}

// Flush discards any messages queued in this sublink's inbox and
// reports how many were dropped. Recovery uses it to clear stale
// traffic before replaying from a checkpoint.
func (s *Sublink) Flush() int {
	n := 0
	for {
		if _, ok := s.inbox.TryRecv(); !ok {
			return n
		}
		n++
	}
}

// Recv blocks until a message arrives on this sublink and returns its
// payload.
func (s *Sublink) Recv(p *sim.Proc) []byte {
	return s.inbox.Recv(p).(Message).Data
}

// TryRecv returns a payload if one is already queued.
func (s *Sublink) TryRecv() ([]byte, bool) {
	v, ok := s.inbox.TryRecv()
	if !ok {
		return nil, false
	}
	return v.(Message).Data, true
}

// Ready reports whether a Recv would not block.
func (s *Sublink) Ready() bool { return s.inbox.Ready() }

// Inbox exposes the underlying channel for ALT/select constructs.
func (s *Sublink) Inbox() *sim.Chan { return s.inbox }

// TransferTime predicts the wall time of an uncontended n-byte transfer.
func TransferTime(n int) sim.Duration {
	return DMAStartup + sim.Duration(n)*ByteTime
}
