package link

import (
	"bytes"
	"testing"

	"tseries/internal/sim"
)

// corruptFirst damages the first n attempts on a sublink, then lets
// frames through clean.
type corruptFirst struct {
	n    int
	seen int
}

func (c *corruptFirst) Corrupt(sublink string, data []byte) []byte {
	c.seen++
	if c.seen > c.n {
		return nil
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0x80
	return bad
}

func TestConnectSelfAndDouble(t *testing.T) {
	k := sim.NewKernel()
	a := NewLink(k, "a/link0")
	b := NewLink(k, "b/link0")
	if err := Connect(a.Sublink(0), a.Sublink(0)); err == nil {
		t.Fatal("self-connect accepted")
	}
	if err := Connect(a.Sublink(0), b.Sublink(0)); err != nil {
		t.Fatal(err)
	}
	if err := Connect(a.Sublink(0), b.Sublink(1)); err == nil {
		t.Fatal("double connect of a accepted")
	}
	if err := Connect(a.Sublink(1), b.Sublink(0)); err == nil {
		t.Fatal("double connect of b accepted")
	}
}

func TestTryRecvOnDisconnected(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "lone")
	s := l.Sublink(0)
	if s.Ready() {
		t.Fatal("disconnected sublink reports ready")
	}
	if _, ok := s.TryRecv(); ok {
		t.Fatal("TryRecv on a disconnected sublink returned a message")
	}
	if s.Up() {
		t.Fatal("disconnected sublink claims to be up")
	}
}

func TestRetransmitCorrectsCorruption(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	a.SetInjector(&corruptFirst{n: 2})
	payload := []byte("the frame must arrive intact")
	var got []byte
	var sendErr error
	k.Go("tx", func(p *sim.Proc) { sendErr = a.Sublink(0).Send(p, payload) })
	k.Go("rx", func(p *sim.Proc) { got = b.Sublink(0).Recv(p) })
	k.Run(0)
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %q", got)
	}
	if a.Corrupted != 2 || a.Retransmits != 2 || a.Undetected != 0 {
		t.Fatalf("counters: corrupted=%d retransmits=%d undetected=%d",
			a.Corrupted, a.Retransmits, a.Undetected)
	}
	if a.Transfers != 3 {
		t.Fatalf("transfers = %d, want 3 (two nacked + one clean)", a.Transfers)
	}
}

func TestPersistentNackNeverDropsFrame(t *testing.T) {
	// Nacks prove the peer is alive: even a long corruption burst must
	// not escalate to a DownError.
	k := sim.NewKernel()
	a, b := pair(k)
	a.SetInjector(&corruptFirst{n: 3 * MaxSendAttempts})
	var sendErr error
	k.Go("tx", func(p *sim.Proc) { sendErr = a.Sublink(0).Send(p, []byte{1, 2, 3}) })
	k.Go("rx", func(p *sim.Proc) { b.Sublink(0).Recv(p) })
	k.Run(0)
	if sendErr != nil {
		t.Fatalf("burst of nacks escalated: %v", sendErr)
	}
	if a.Drops != 0 || a.Timeouts != 0 {
		t.Fatalf("drops=%d timeouts=%d on a live wire", a.Drops, a.Timeouts)
	}
}

func TestOutageTimesOutThenDownError(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	b.Sublink(0).SetDown(true)
	if a.Sublink(0).Up() {
		t.Fatal("channel with a severed far end claims to be up")
	}
	var sendErr error
	var elapsed sim.Time
	k.Go("tx", func(p *sim.Proc) {
		sendErr = a.Sublink(0).Send(p, []byte{1})
		elapsed = p.Now()
	})
	k.Run(0)
	if !IsDown(sendErr) {
		t.Fatalf("got %v, want DownError", sendErr)
	}
	de := sendErr.(*DownError)
	if de.Attempts != MaxSendAttempts {
		t.Fatalf("gave up after %d attempts, want %d", de.Attempts, MaxSendAttempts)
	}
	if a.Timeouts != MaxSendAttempts || a.Drops != 1 {
		t.Fatalf("timeouts=%d drops=%d", a.Timeouts, a.Drops)
	}
	// Cost: MaxSendAttempts timed-out attempts plus the backoffs between them.
	want := sim.Duration(MaxSendAttempts) * (DMAStartup + AckTimeout)
	for n := 1; n < MaxSendAttempts; n++ {
		want += RetryBackoff(n)
	}
	if sim.Duration(elapsed) != want {
		t.Fatalf("outage detection took %v, want %v", sim.Duration(elapsed), want)
	}
	// Restore the far end: traffic flows again.
	b.Sublink(0).SetDown(false)
	var got []byte
	k.Go("tx2", func(p *sim.Proc) {
		if err := a.Sublink(0).Send(p, []byte{7}); err != nil {
			t.Errorf("send after repair: %v", err)
		}
	})
	k.Go("rx2", func(p *sim.Proc) { got = b.Sublink(0).Recv(p) })
	k.Run(0)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("post-repair delivery: %v", got)
	}
}

func TestLinkSetDownSeversAllSublinks(t *testing.T) {
	k := sim.NewKernel()
	a, _ := pair(k)
	a.SetDown(true)
	for i := 0; i < SublinksPerLink; i++ {
		if !a.Sublink(i).Down() {
			t.Fatalf("sublink %d survived link SetDown", i)
		}
	}
	a.SetDown(false)
	if a.Sublink(0).Down() {
		t.Fatal("sublink still down after restore")
	}
}

func TestFlushDiscardsQueued(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(k)
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := a.Sublink(0).Send(p, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	k.Run(0)
	if n := b.Sublink(0).Flush(); n != 5 {
		t.Fatalf("flushed %d, want 5", n)
	}
	if b.Sublink(0).Ready() {
		t.Fatal("inbox still ready after flush")
	}
}
