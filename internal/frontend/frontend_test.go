package frontend

import (
	"encoding/binary"
	"testing"

	"tseries/internal/cp"
	"tseries/internal/machine"
	"tseries/internal/sim"
)

func TestBootSPMDProgram(t *testing.T) {
	// Boot a 16-node machine (two modules) with one SPMD program: each
	// node computes id*id + nodes and stores it at a result word; the
	// front end collects and checks all 16 results.
	k := sim.NewKernel()
	m, err := machine.New(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	fe := New(m)

	const resultWord = 0x7F10
	// ldnl takes the byte address in Areg: NodeIDWord*4 = 0x1FC00.
	prog, err := cp.Assemble(`
		ldc 0x1FC00  ; byte address of NodeIDWord (0x7F00*4)
		ldnl 0       ; my id
		stl 0
		ldc 0x1FC04
		ldnl 0       ; node count
		stl 1
		ldl 0
		ldl 0
		mul          ; id*id
		ldl 1
		add          ; + nodes
		ldc 0x1FC40  ; byte address of resultWord (0x7F10*4)
		stnl 0
		stopp
	`)
	if err != nil {
		t.Fatal(err)
	}

	var results [][]byte
	k.Go("frontend", func(p *sim.Proc) {
		if err := fe.LoadAll(p, prog); err != nil {
			t.Errorf("load: %v", err)
			return
		}
		procs := fe.StartAll()
		for _, pr := range procs {
			p.Join(pr)
		}
		var err error
		results, err = fe.Collect(p, resultWord*4, 4)
		if err != nil {
			t.Errorf("collect: %v", err)
		}
	})
	k.Run(0)
	if len(results) != 16 {
		t.Fatalf("collected %d results", len(results))
	}
	for id, raw := range results {
		got := int32(binary.LittleEndian.Uint32(raw))
		want := int32(id*id + 16)
		if got != want {
			t.Fatalf("node %d result = %d, want %d", id, got, want)
		}
	}
}

func TestBootTiming(t *testing.T) {
	// Loading a program onto all nodes goes module-parallel: a 2-module
	// load is no slower than a 1-module load (same bytes per thread).
	load := func(dim int) sim.Duration {
		k := sim.NewKernel()
		m, err := machine.New(k, dim)
		if err != nil {
			t.Fatal(err)
		}
		fe := New(m)
		code := make([]byte, 4096)
		var elapsed sim.Duration
		k.Go("fe", func(p *sim.Proc) {
			start := p.Now()
			if err := fe.LoadAll(p, code); err != nil {
				t.Errorf("load: %v", err)
			}
			elapsed = p.Now().Sub(start)
		})
		k.Run(0)
		return elapsed
	}
	one := load(3)
	two := load(4)
	if two > one+one/20 {
		t.Fatalf("2-module load %v much slower than 1-module %v", two, one)
	}
}
