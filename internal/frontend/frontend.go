// Package frontend models the host computer attached to a T Series: the
// machine has no operating system of its own — a front end loads code
// and data into node memories through each module's system board (§III:
// the system board "provides input/output and management functions"),
// starts the control processors, and collects results the same way.
//
// Because every module is identical and has identical connections, the
// front end treats any size machine uniformly — the paper's homogeneity
// argument applied to system management.
package frontend

import (
	"encoding/binary"
	"fmt"

	"tseries/internal/machine"
	"tseries/internal/module"
	"tseries/internal/sim"
)

// Well-known addresses of the boot protocol.
const (
	// BootCodeBase is where the front end loads each node's program.
	BootCodeBase = 0x10000
	// BootWorkspace is each program's initial workspace (word index).
	BootWorkspace = 0x8000
	// NodeIDWord is the word where the front end writes the node's cube
	// address before starting it, so SPMD programs can branch on it.
	NodeIDWord = 0x7F00
	// NodesWord holds the total node count.
	NodesWord = 0x7F01
)

// FrontEnd drives one machine.
type FrontEnd struct {
	M *machine.Machine
}

// New attaches a front end to a machine.
func New(m *machine.Machine) *FrontEnd { return &FrontEnd{M: m} }

// moduleOf locates the module and local index of a global node id.
func (f *FrontEnd) moduleOf(nodeID int) (*module.Module, int) {
	return f.M.Modules[nodeID/module.NodesPerModule], nodeID % module.NodesPerModule
}

// LoadAll streams the same program image into every node's memory at
// BootCodeBase, all modules in parallel (each through its own system
// board), and writes each node's identity words. It blocks until every
// node is loaded.
func (f *FrontEnd) LoadAll(p *sim.Proc, code []byte) error {
	k := f.M.K
	errs := make([]error, len(f.M.Modules))
	done := sim.NewChan(k, "frontend/load", len(f.M.Modules))
	for mi, mod := range f.M.Modules {
		idx, mm := mi, mod
		k.Go(fmt.Sprintf("frontend/load/mod%d", idx), func(lp *sim.Proc) {
			defer done.Send(lp, struct{}{})
			for local := range mm.Nodes {
				global := idx*module.NodesPerModule + local
				if err := mm.LoadNodeMemory(lp, local, BootCodeBase, code); err != nil {
					errs[idx] = err
					return
				}
				ident := make([]byte, 8)
				binary.LittleEndian.PutUint32(ident[0:], uint32(global))
				binary.LittleEndian.PutUint32(ident[4:], uint32(len(f.M.Nodes)))
				if err := mm.LoadNodeMemory(lp, local, NodeIDWord*4, ident); err != nil {
					errs[idx] = err
					return
				}
			}
		})
	}
	for range f.M.Modules {
		done.Recv(p)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// StartAll boots every control processor at BootCodeBase and returns the
// spawned processes (callers typically just let the kernel run them).
func (f *FrontEnd) StartAll() []*sim.Proc {
	procs := make([]*sim.Proc, len(f.M.Nodes))
	for i, nd := range f.M.Nodes {
		procs[i] = nd.CP.Go(BootCodeBase, BootWorkspace)
	}
	return procs
}

// Collect dumps n bytes from the given byte offset of every node, via
// the system boards, modules in parallel.
func (f *FrontEnd) Collect(p *sim.Proc, off, n int) ([][]byte, error) {
	k := f.M.K
	out := make([][]byte, len(f.M.Nodes))
	errs := make([]error, len(f.M.Modules))
	done := sim.NewChan(k, "frontend/collect", len(f.M.Modules))
	for mi, mod := range f.M.Modules {
		idx, mm := mi, mod
		k.Go(fmt.Sprintf("frontend/collect/mod%d", idx), func(cp *sim.Proc) {
			defer done.Send(cp, struct{}{})
			for local := range mm.Nodes {
				data, err := mm.DumpNodeMemory(cp, local, off, n)
				if err != nil {
					errs[idx] = err
					return
				}
				out[idx*module.NodesPerModule+local] = data
			}
		})
	}
	for range f.M.Modules {
		done.Recv(p)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
