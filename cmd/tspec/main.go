// Command tspec prints T Series configuration specifications — the
// paper's §III scaling story, derived purely from module properties —
// and, with -node, the Figure 1 node inventory from the simulator's own
// structure.
//
// Usage:
//
//	tspec             # the configuration table, 0-cube to 14-cube
//	tspec -dim 12     # one configuration
//	tspec -node       # the node block diagram as text
package main

import (
	"flag"
	"fmt"
	"os"

	"tseries/internal/cp"
	"tseries/internal/fpu"
	"tseries/internal/link"
	"tseries/internal/machine"
	"tseries/internal/memory"
	"tseries/internal/node"
	"tseries/internal/sim"
)

func main() {
	dim := flag.Int("dim", -1, "print a single cube dimension (default: all)")
	nodeDiag := flag.Bool("node", false, "print the Figure 1 node inventory")
	flag.Parse()

	if *nodeDiag {
		printNode()
		return
	}
	if *dim >= 0 {
		s, err := machine.SpecFor(*dim)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(s)
		return
	}
	fmt.Println("FPS T Series configurations (derived from the 8-node module):")
	for d := 0; d <= machine.MaxDim; d++ {
		s, _ := machine.SpecFor(d)
		usable := " "
		if !s.Usable() {
			usable = "!" // fewer than 2 sublinks/node left for I/O
		}
		fmt.Printf("%s %s\n", usable, s)
	}
	fmt.Println("\n'!' marks configurations without the two I/O sublinks per node;")
	fmt.Println("the practical maximum is the 12-cube (4096 nodes, >65 GFLOPS, 4 GB).")
}

// printNode renders the Figure 1 inventory from a live node's structure.
func printNode() {
	k := sim.NewKernel()
	nd := node.New(k, 0)
	fmt.Println("T Series processor node (Figure 1):")
	fmt.Printf("  control processor   32-bit, %.1f MIPS, stack ISA, byte addressable\n",
		1/cp.Tick.Seconds()/1e6)
	fmt.Printf("  main memory         %d KB dual-ported DRAM, parity per byte\n", memory.Bytes>>10)
	fmt.Printf("    bank A            %d rows × %d bytes\n", memory.BankARows, memory.RowBytes)
	fmt.Printf("    bank B            %d rows × %d bytes\n", memory.BankBRows, memory.RowBytes)
	fmt.Printf("    word port         400 ns per 32-bit word (10 MB/s)\n")
	fmt.Printf("    row port          %d bytes per 400 ns (2560 MB/s)\n", memory.RowBytes)
	fmt.Printf("  vector registers    2 × %d bytes (one memory row each)\n", memory.RowBytes)
	fmt.Printf("  adder pipeline      %d stages (32- and 64-bit)\n", nd.FPU.Adder.Depth(fpu.P64))
	fmt.Printf("  multiplier pipeline %d stages 32-bit, %d stages 64-bit\n",
		nd.FPU.Multiplier.Depth(fpu.P32), nd.FPU.Multiplier.Depth(fpu.P64))
	fmt.Printf("  peak rate           %d MFLOPS (one add + one multiply per 125 ns)\n", node.PeakMFLOPS)
	fmt.Printf("  links               %d bidirectional serial links, %d-way multiplexed → %d sublinks\n",
		link.LinksPerNode, link.SublinksPerLink, link.SublinksPerNode)
	fmt.Printf("  link bandwidth      %.3f MB/s per direction after protocol bits\n",
		link.EffectiveBandwidth()/1e6)
	fmt.Printf("  vector forms        VADD VSUB VMUL SAXPY VSMUL VSADD VNEG VABS DOT SUM VMAX VMIN VCMP CVT\n")
}
