// Command tbench regenerates the paper's tables and figures: it runs the
// full experiment suite (or a selected subset) and prints each result
// block — the same harness the repository's benchmarks and EXPERIMENTS.md
// are built from.
//
// Usage:
//
//	tbench            # run everything
//	tbench E2 E11     # run selected experiments
//	tbench -list      # list the suite
package main

import (
	"context"

	"flag"
	"fmt"
	"os"

	"tseries/internal/core"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	}
	failed := false
	for _, id := range ids {
		e, err := core.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		r, err := e.Run(context.Background())
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(r.String())
	}
	if failed {
		os.Exit(1)
	}
}
