// Command tsimd hosts the simulator as a long-running HTTP/JSON job
// service (internal/serve): a bounded admission queue with per-tenant
// rate limits in front of a worker pool, a content-addressed result
// cache, and a graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	tsimd -addr :8097 -data-dir /var/lib/tsimd
//	curl -s :8097/jobs -d '{"workload":"saxpy","flags":{"dim":"1","rows":"5"}}'
//	curl -s :8097/jobs/j1
//	curl -s :8097/jobs/j1/result
//	curl -s :8097/stats
//
// With -pprof N, net/http/pprof is served on 127.0.0.1:N (loopback
// only, separate listener) for live CPU/heap profiling of long runs.
//
// With -data-dir, tsimd is crash-safe: every accepted job is fsync'd to
// a write-ahead journal before the submission is acknowledged, and every
// completed result lands in a checksummed on-disk store before the job
// reports done. After a crash (even kill -9) the next start replays the
// journal — completed jobs serve their stored bytes, interrupted jobs
// re-run deterministically — and /readyz stays 503 until recovery
// finishes. A journal with mid-file corruption refuses startup with an
// error naming the bad segment; move it aside to discard that history.
//
// On SIGTERM the server stops admitting (new submissions get 503,
// /readyz flips), finishes everything queued and running within the
// -drain deadline, and exits 0; if the deadline passes, in-flight jobs
// are canceled at their kernels' next event boundary and tsimd exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers for the -pprof loopback listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"tseries/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("tsimd", flag.ExitOnError)
	addr := fs.String("addr", ":8097", "listen address")
	queue := fs.Int("queue", 64, "job queue capacity")
	workers := fs.Int("workers", 4, "worker goroutines")
	cache := fs.Int("cache", 256, "result-cache entries (negative disables)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-job deadline")
	drain := fs.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM")
	rate := fs.Float64("rate", 50, "per-tenant submissions per second")
	burst := fs.Float64("burst", 100, "per-tenant submission burst")
	inflight := fs.Int("inflight", 32, "per-tenant queued+running ceiling")
	shardBudget := fs.Int("shard-budget", 0, "pool-wide extra kernel-shard workers (0: 2x workers; negative disables sharding)")
	dataDir := fs.String("data-dir", "", "crash-safety root: job journal + result store (empty: memory-only)")
	segBytes := fs.Int64("journal-segment", 0, "journal segment rotation size in bytes (0: 1 MiB)")
	pprofPort := fs.Int("pprof", 0, "serve net/http/pprof on 127.0.0.1:<port> (0 disables)")
	fs.Parse(os.Args[1:])

	if *pprofPort != 0 {
		// Profiling stays on loopback, on its own listener and mux, so it
		// is never reachable through the public job endpoint.
		paddr := fmt.Sprintf("127.0.0.1:%d", *pprofPort)
		go func() {
			fmt.Fprintf(os.Stderr, "tsimd: pprof on http://%s/debug/pprof/\n", paddr)
			if err := http.ListenAndServe(paddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tsimd: pprof:", err)
			}
		}()
	}

	srv, err := serve.Open(serve.Options{
		Queue:        *queue,
		Workers:      *workers,
		CacheCap:     *cache,
		JobTimeout:   *timeout,
		Rate:         *rate,
		Burst:        *burst,
		MaxInFlight:  *inflight,
		ShardBudget:  *shardBudget,
		DataDir:      *dataDir,
		SegmentBytes: *segBytes,
	})
	if err != nil {
		// Typically a *durable.CorruptError: the journal holds mid-file
		// damage that is not a torn tail. Refuse to serve rather than
		// invent history; the message names the segment to repair or move.
		fmt.Fprintln(os.Stderr, "tsimd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsimd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "tsimd: serving on %s (queue %d, workers %d)\n", ln.Addr(), *queue, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tsimd: %s; draining (deadline %s)\n", s, *drain)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "tsimd:", err)
		os.Exit(1)
	}

	// Drain first so pollers can still fetch statuses and results while
	// queued work finishes; only then stop the HTTP listener.
	drainErr := srv.Drain(*drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "tsimd:", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tsimd: drained cleanly")
}
