// Command occamrun executes an Occam program on a simulated T Series
// node: the paper's software story, where "channel commands can make
// direct data transfers between concurrent processes" and the language
// controls the vector arithmetic unit through builtin procedures (VADD,
// VMUL, SAXPY, DOT, SUM).
//
// Usage:
//
//	occamrun prog.occ            # run PROC main()
//	occamrun -proc work prog.occ # run a named PROC (no parameters)
//	occamrun -time prog.occ      # also print the simulated end time
//
// PRINT writes to stdout; the program runs until all processes finish.
package main

import (
	"flag"
	"fmt"
	"os"

	"tseries/internal/node"
	"tseries/internal/occam"
	"tseries/internal/sim"
)

func main() {
	procName := flag.String("proc", "main", "PROC to start")
	showTime := flag.Bool("time", false, "print the simulated completion time")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: occamrun [-proc name] [-time] program.occ")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := occam.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	k := sim.NewKernel()
	nd := node.New(k, 0)
	ip := occam.New(k, prog, nd)
	ip.Out = os.Stdout
	if _, err := ip.Start(*procName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	end := k.Run(0)
	if ip.Err() != nil {
		fmt.Fprintln(os.Stderr, ip.Err())
		os.Exit(1)
	}
	if *showTime {
		fmt.Printf("simulated time: %v\n", end)
	}
}
