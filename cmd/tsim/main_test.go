package main

import (
	"context"

	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), &out, &errb, args)
	return code, out.String(), errb.String()
}

// Unknown names must exit non-zero and tell the user what is valid —
// the registry error messages carry the lists.
func TestUnknownWorkloadListsValidAndExitsNonzero(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "bogus")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, name := range []string{"bogus", "saxpy", "matmul", "recovery"} {
		if !strings.Contains(stderr, name) {
			t.Fatalf("stderr %q does not mention %q", stderr, name)
		}
	}
}

func TestUnknownExperimentListsValidAndExitsNonzero(t *testing.T) {
	code, _, stderr := runCLI(t, "-experiment", "E99")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, id := range []string{"E99", "E1", "E17", "A6"} {
		if !strings.Contains(stderr, id) {
			t.Fatalf("stderr %q does not mention %q", stderr, id)
		}
	}
}

func TestListShowsBothRegistries(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"E1", "A6", "saxpy", "stencil", "-dim"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("-list output missing %q:\n%s", want, stdout)
		}
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-experiment") || !strings.Contains(stderr, "saxpy") {
		t.Fatalf("usage should name the flags and registries:\n%s", stderr)
	}
}

func TestBadSweepSpec(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "saxpy", "-sweep", "nodes=1..4")
	if code != 2 || !strings.Contains(stderr, "dim=LO..HI") {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
}

// Interrupt semantics: a canceled run context must exit 130 (128 +
// SIGINT), report the interrupt on stderr, and emit no partial JSON on
// stdout — downstream pipes see either a complete document or nothing.
func TestInterruptExits130AndSuppressesJSON(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, args := range [][]string{
		{"-workload", "saxpy", "-dim", "2", "-rows", "50", "-json"},
		{"-workload", "saxpy", "-sweep", "dim=1..3", "-rows", "50", "-json"},
		{"-experiment", "E1", "-json"},
	} {
		var out, errb bytes.Buffer
		code := run(ctx, &out, &errb, args)
		if code != interruptExit {
			t.Fatalf("%v: exit = %d, want %d (stderr: %s)", args, code, interruptExit, errb.String())
		}
		if out.Len() != 0 {
			t.Fatalf("%v: interrupted run wrote partial output:\n%s", args, out.String())
		}
		if !strings.Contains(errb.String(), "interrupted") {
			t.Fatalf("%v: stderr %q does not mention the interrupt", args, errb.String())
		}
	}
}

func TestWorkloadJSONRoundTrips(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-workload", "saxpy", "-dim", "1", "-rows", "5", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	var rep struct {
		Workload string
		Nodes    int
		Elapsed  int64
		Kernel   struct{ Events int64 }
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if rep.Workload != "saxpy" || rep.Nodes != 2 || rep.Elapsed <= 0 || rep.Kernel.Events == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

// TestExperimentAllGolden pins the full-suite JSON output to a
// checked-in golden file. The kernel guarantees deterministic event
// ordering, so any byte of drift here is a scheduling-order regression,
// not noise. Regenerate (after an intentional semantic change) with:
//
//	go run ./cmd/tsim -experiment all -json > cmd/tsim/testdata/experiment_all_golden.json
func TestExperimentAllGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is too slow for -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "experiment_all_golden.json"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	code, stdout, stderr := runCLI(t, "-experiment", "all", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if stdout == string(want) {
		return
	}
	got := []byte(stdout)
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo, hi := i-60, i+60
	if lo < 0 {
		lo = 0
	}
	ctx := func(b []byte) string {
		h := hi
		if h > len(b) {
			h = len(b)
		}
		if lo >= h {
			return ""
		}
		return string(b[lo:h])
	}
	t.Fatalf("output differs from golden at byte %d (got %d bytes, want %d)\n got: …%q…\nwant: …%q…",
		i, len(got), len(want), ctx(got), ctx(want))
}

// TestKernelShardsFlagIsOutputInvariant pins the CLI-level determinism
// contract: -kernel-shards changes only how many host workers execute
// the simulation, never a byte of output. The shard-native pring
// workload genuinely partitions; experiments degrade to the serial
// plan (machine.PartitionPlan.Buildable) with a stderr note.
func TestKernelShardsFlagIsOutputInvariant(t *testing.T) {
	base := []string{"-workload", "pring", "-dim", "3", "-rows", "40", "-iters", "3", "-json"}
	code, want, stderr := runCLI(t, base...)
	if code != 0 {
		t.Fatalf("serial exit = %d, stderr: %s", code, stderr)
	}
	for _, shards := range []string{"2", "4"} {
		code, got, stderr := runCLI(t, append([]string{"-kernel-shards", shards}, base...)...)
		if code != 0 {
			t.Fatalf("shards=%s: exit = %d, stderr: %s", shards, code, stderr)
		}
		if got != want {
			t.Fatalf("shards=%s: output differs from serial\nserial: %s\nsharded: %s", shards, want, got)
		}
	}

	// Experiments partition machine builds by geometry and treat the flag
	// as a worker count, so their output must be flag-invariant with no
	// advisory chatter on stderr.
	code, want, stderr = runCLI(t, "-experiment", "E1", "-json")
	if code != 0 {
		t.Fatalf("E1 serial exit = %d, stderr: %s", code, stderr)
	}
	code, got, stderr := runCLI(t, "-experiment", "E1", "-json", "-kernel-shards", "4")
	if code != 0 {
		t.Fatalf("E1 sharded exit = %d, stderr: %s", code, stderr)
	}
	if got != want {
		t.Fatalf("E1: -kernel-shards changed experiment output\nserial: %s\nsharded: %s", want, got)
	}
	if strings.Contains(stderr, "serial plan") {
		t.Fatalf("stale serial-plan note still on stderr: %q", stderr)
	}
}

// TestBenchWritesTrajectories exercises the -bench path end to end:
// both JSON documents land in -benchdir, parse, and carry the expected
// schemas, and a generous baseline passes the regression gate.
func TestBenchWritesTrajectories(t *testing.T) {
	if testing.Short() {
		t.Skip("bench mode times the full suite; too slow for -short")
	}
	dir := t.TempDir()
	// A baseline so slow nothing can regress against it.
	baseline := filepath.Join(dir, "baseline.json")
	base := map[string]interface{}{
		"schema": "tseries-bench-kernel/v1",
		"results": []map[string]interface{}{
			{"name": "at_now", "ns_per_op": 1e9},
			{"name": "park_unpark", "ns_per_op": 1e9},
		},
	}
	raw, _ := json.Marshal(base)
	if err := os.WriteFile(baseline, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-bench", "-short", "-benchdir", dir, "-bench-baseline", baseline)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\n%s", code, stderr, stdout)
	}
	var kt struct {
		Schema  string `json:"schema"`
		Results []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"results"`
	}
	kb, err := os.ReadFile(filepath.Join(dir, "BENCH_kernel.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(kb, &kt); err != nil {
		t.Fatalf("BENCH_kernel.json: %v", err)
	}
	if kt.Schema != "tseries-bench-kernel/v1" || len(kt.Results) < 7 {
		t.Fatalf("unexpected kernel trajectory: schema=%q results=%d", kt.Schema, len(kt.Results))
	}
	for _, r := range kt.Results {
		if r.NsPerOp <= 0 {
			t.Fatalf("%s: ns_per_op = %g", r.Name, r.NsPerOp)
		}
	}
	var st struct {
		Schema      string                   `json:"schema"`
		Experiments []map[string]interface{} `json:"experiments"`
		Workloads   []map[string]interface{} `json:"workloads"`
	}
	sb, err := os.ReadFile(filepath.Join(dir, "BENCH_suite.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatalf("BENCH_suite.json: %v", err)
	}
	if st.Schema != "tseries-bench-suite/v1" || len(st.Experiments) == 0 || len(st.Workloads) == 0 {
		t.Fatalf("unexpected suite trajectory: schema=%q exps=%d wls=%d",
			st.Schema, len(st.Experiments), len(st.Workloads))
	}
	if !strings.Contains(stdout, "vs baseline") {
		t.Fatalf("expected a baseline comparison section:\n%s", stdout)
	}
}

// TestProfileFlagsWriteFiles checks -cpuprofile/-memprofile wrap a
// normal run and leave non-empty pprof files behind.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, stderr := runCLI(t, "-workload", "sort", "-n", "32", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestExperimentSubsetRunsInRequestedOrder checks the comma-list path
// end to end on two cheap experiments.
func TestExperimentSubsetRunsInRequestedOrder(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-experiment", "E7,E1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	i7, i1 := strings.Index(stdout, "### E7"), strings.Index(stdout, "### E1 ")
	if i7 < 0 || i1 < 0 || i7 > i1 {
		t.Fatalf("expected E7 before E1:\n%s", stdout)
	}
}

// TestPreSparseGoldenPreserved pins the compatibility contract of the
// sparse-memory / dedup-disk rewrite: every experiment recorded in the
// golden BEFORE node memory went sparse (archived as
// experiment_all_pre_sparse.json) must still appear byte-for-byte in
// today's golden. Sparsity is a host-representation change only — every
// simulated time, counter, and fault fingerprint must survive it.
func TestPreSparseGoldenPreserved(t *testing.T) {
	load := func(name string) map[string]json.RawMessage {
		raw, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		var results []json.RawMessage
		if err := json.Unmarshal(raw, &results); err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		out := map[string]json.RawMessage{}
		for _, r := range results {
			var id struct{ ID string }
			if err := json.Unmarshal(r, &id); err != nil {
				t.Fatalf("parsing %s entry: %v", name, err)
			}
			out[id.ID] = r
		}
		return out
	}
	pre := load("experiment_all_pre_sparse.json")
	cur := load("experiment_all_golden.json")
	if len(pre) == 0 {
		t.Fatal("pre-sparse golden is empty")
	}
	for id, want := range pre {
		got, ok := cur[id]
		if !ok {
			t.Errorf("experiment %s vanished from the current golden", id)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("experiment %s drifted from its pre-sparse output", id)
		}
	}
}
