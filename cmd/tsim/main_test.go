package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(&out, &errb, args)
	return code, out.String(), errb.String()
}

// Unknown names must exit non-zero and tell the user what is valid —
// the registry error messages carry the lists.
func TestUnknownWorkloadListsValidAndExitsNonzero(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "bogus")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, name := range []string{"bogus", "saxpy", "matmul", "recovery"} {
		if !strings.Contains(stderr, name) {
			t.Fatalf("stderr %q does not mention %q", stderr, name)
		}
	}
}

func TestUnknownExperimentListsValidAndExitsNonzero(t *testing.T) {
	code, _, stderr := runCLI(t, "-experiment", "E99")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, id := range []string{"E99", "E1", "E17", "A6"} {
		if !strings.Contains(stderr, id) {
			t.Fatalf("stderr %q does not mention %q", stderr, id)
		}
	}
}

func TestListShowsBothRegistries(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"E1", "A6", "saxpy", "stencil", "-dim"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("-list output missing %q:\n%s", want, stdout)
		}
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-experiment") || !strings.Contains(stderr, "saxpy") {
		t.Fatalf("usage should name the flags and registries:\n%s", stderr)
	}
}

func TestBadSweepSpec(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "saxpy", "-sweep", "nodes=1..4")
	if code != 2 || !strings.Contains(stderr, "dim=LO..HI") {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
}

func TestWorkloadJSONRoundTrips(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-workload", "saxpy", "-dim", "1", "-rows", "5", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	var rep struct {
		Workload string
		Nodes    int
		Elapsed  int64
		Kernel   struct{ Events int64 }
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if rep.Workload != "saxpy" || rep.Nodes != 2 || rep.Elapsed <= 0 || rep.Kernel.Events == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

// TestExperimentSubsetRunsInRequestedOrder checks the comma-list path
// end to end on two cheap experiments.
func TestExperimentSubsetRunsInRequestedOrder(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-experiment", "E7,E1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	i7, i1 := strings.Index(stdout, "### E7"), strings.Index(stdout, "### E1 ")
	if i7 < 0 || i1 < 0 || i7 > i1 {
		t.Fatalf("expected E7 before E1:\n%s", stdout)
	}
}
