package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tseries/internal/bench"
)

// runBench emits the performance trajectory: kernel hot-path
// micro-measurements to BENCH_kernel.json and the suite wall-clock sweep
// to BENCH_suite.json, both under dir. When baseline names a previous
// BENCH_kernel.json, any scenario whose ns/op regressed by more than 25%
// fails the run; when suiteBaseline names a previous BENCH_suite.json,
// any workload whose whole-run wall-clock grew more than 3x fails too —
// the coarse gate that pins the recovery workloads' end-to-end cost.
// Together these are the CI gate.
func runBench(stdout, stderr io.Writer, dir, baseline, suiteBaseline string, short bool) int {
	const threshold = 1.25
	const suiteThreshold = 3.0
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	fmt.Fprintln(stdout, "## kernel hot paths")
	kt := bench.MeasureKernel(short)
	for _, r := range kt.Results {
		fmt.Fprintf(stdout, "  %-22s %10.1f ns/op %14.0f events/sec %8.2f allocs/op\n",
			r.Name, r.NsPerOp, r.EventsPerSec, r.AllocsPerOp)
	}
	kernelPath := filepath.Join(dir, "BENCH_kernel.json")
	if err := bench.WriteJSON(kernelPath, kt); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	fmt.Fprintln(stdout, "\n## suite trajectory")
	st := bench.MeasureSuite(short)
	for _, e := range st.Experiments {
		if e.Error != "" {
			fmt.Fprintf(stdout, "  %-4s %10.2f ms  ERROR %s\n", e.ID, float64(e.WallNs)/1e6, e.Error)
			continue
		}
		fmt.Fprintf(stdout, "  %-4s %10.2f ms\n", e.ID, float64(e.WallNs)/1e6)
	}
	for _, w := range st.Workloads {
		if w.Error != "" {
			fmt.Fprintf(stdout, "  %-9s %10.2f ms  ERROR %s\n", w.Name, float64(w.WallNs)/1e6, w.Error)
			continue
		}
		fmt.Fprintf(stdout, "  %-9s %10.2f ms %14.0f events/sec\n",
			w.Name, float64(w.WallNs)/1e6, w.EventsPerSec)
	}
	fmt.Fprintf(stdout, "  total %.2f ms\n", float64(st.TotalWallNs)/1e6)
	suitePath := filepath.Join(dir, "BENCH_suite.json")
	if err := bench.WriteJSON(suitePath, st); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "\nwrote %s, %s\n", kernelPath, suitePath)

	code := 0
	if baseline != "" {
		base, err := bench.LoadKernelBaseline(baseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		cmp, regressed := bench.CompareKernel(base, kt, threshold)
		fmt.Fprintf(stdout, "\n## vs baseline %s (gate: ns/op ratio > %.2f)\n", baseline, threshold)
		for _, c := range cmp {
			verdict := "ok"
			if c.Regressed {
				verdict = "REGRESSED"
			}
			fmt.Fprintf(stdout, "  %-22s %10.1f -> %10.1f ns/op  x%.2f  %s\n",
				c.Name, c.OldNsPerOp, c.NewNsPerOp, c.Ratio, verdict)
		}
		if regressed {
			fmt.Fprintln(stderr, "tsim: kernel benchmark regression vs baseline")
			code = 1
		}
	}
	if suiteBaseline != "" {
		base, err := bench.LoadSuiteBaseline(suiteBaseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		cmp, regressed := bench.CompareSuite(base, st, suiteThreshold)
		fmt.Fprintf(stdout, "\n## vs suite baseline %s (gate: wall-clock ratio > %.2f)\n", suiteBaseline, suiteThreshold)
		for _, c := range cmp {
			verdict := "ok"
			if c.Regressed {
				verdict = "REGRESSED"
			}
			fmt.Fprintf(stdout, "  %-9s %10.2f -> %10.2f ms  x%.2f  %s\n",
				c.Name, c.OldNsPerOp/1e6, c.NewNsPerOp/1e6, c.Ratio, verdict)
		}
		if regressed {
			fmt.Fprintln(stderr, "tsim: suite wall-clock regression vs baseline")
			code = 1
		}
	}
	return code
}
