// Command tsim builds a T Series machine and runs one of the bundled
// scientific workloads on it, printing simulated time and achieved
// rates — a quick way to explore how problem size and machine size trade
// against the architecture's 1:13:130 balance.
//
// Usage:
//
//	tsim -workload saxpy  -dim 3 -rows 200
//	tsim -workload matmul -dim 2 -n 64
//	tsim -workload fft    -dim 4 -n 1024
//	tsim -workload stencil -dim 2 -n 32 -iters 50
//	tsim -workload lu     -n 64
//	tsim -workload recovery -dim 2 -phases 6 -faults seed=7,ber=1e-6,crash=2@12s -ckpt 8s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tseries/internal/fault"
	"tseries/internal/sim"
	"tseries/internal/workloads"
)

func main() {
	workload := flag.String("workload", "saxpy", "saxpy | matmul | fft | stencil | lu | dlu | sort | solve | recovery")
	dim := flag.Int("dim", 3, "cube dimension (2^dim nodes)")
	n := flag.Int("n", 64, "problem size (matrix order, FFT points, grid side)")
	rows := flag.Int("rows", 100, "SAXPY rows per node")
	iters := flag.Int("iters", 20, "stencil iterations")
	seed := flag.Int64("seed", 1, "input generator seed")
	phases := flag.Int("phases", 6, "recovery workload phases")
	faults := flag.String("faults", "", "fault plan, e.g. seed=7,ber=1e-6,crash=2@12s,down=0.1@5s+2s,flip=1:4096.3@9s,disk=0.5@14s")
	ckpt := flag.Duration("ckpt", 0, "periodic checkpoint interval for -workload recovery (0 = initial checkpoint only)")
	pad := flag.Duration("pad", 2*time.Second, "per-phase synthetic compute time for -workload recovery")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	switch *workload {
	case "saxpy":
		res, err := workloads.DistributedSAXPY(*dim, *rows, 1)
		fail(err)
		fmt.Printf("SAXPY: %d nodes × %d rows: %v simulated, %.1f MFLOPS aggregate\n",
			res.Nodes, res.Rows, res.Elapsed, res.MFLOPS())
	case "matmul":
		a, b := randMat(r, *n), randMat(r, *n)
		res, err := workloads.DistributedMatMul(*dim, *n, a, b)
		fail(err)
		fmt.Printf("MatMul %d×%d on %d nodes: %v simulated, %.1f MFLOPS\n",
			*n, *n, res.Nodes, res.Elapsed, res.MFLOPS())
	case "fft":
		in := make([]complex128, *n)
		for i := range in {
			in[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		res, err := workloads.DistributedFFT(*dim, in)
		fail(err)
		fmt.Printf("FFT %d points on %d nodes: %v simulated\n", res.N, res.Nodes, res.Elapsed)
	case "stencil":
		init := make([][]float64, *n)
		for i := range init {
			init[i] = make([]float64, *n)
			init[i][0] = 100
		}
		res, err := workloads.DistributedStencil(*dim/2, *dim-*dim/2, *n, init, *iters)
		fail(err)
		fmt.Printf("Stencil %d×%d, %d iterations on %d nodes: %v simulated\n",
			res.Grid, res.Grid, res.Iters, res.Nodes, res.Elapsed)
	case "dlu":
		a := randMat(r, *n)
		for i := range a {
			a[i][i] += float64(*n)
		}
		res, err := workloads.DistributedLU(*dim, *n, a)
		fail(err)
		fmt.Printf("Distributed LU %d×%d on %d nodes: %v simulated, %d pivot swaps\n",
			res.N, res.N, res.Nodes, res.Elapsed, res.Swaps)
	case "sort":
		keys := make([]float64, *n)
		for i := range keys {
			keys[i] = r.NormFloat64()
		}
		res, err := workloads.SortRecords(*n, keys, true)
		fail(err)
		fmt.Printf("Sorted %d × 1 KB records (row moves): %v simulated, %d moves costing %v\n",
			res.Records, res.Elapsed, res.Moves, res.MoveTime)
	case "solve":
		a := randMat(r, *n)
		for i := range a {
			a[i][i] += float64(*n)
		}
		b := make([]float64, *n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		res, err := workloads.Solve(*n, a, b)
		fail(err)
		fmt.Printf("Solve %d×%d (LINPACK recipe, 1 node): %v simulated, %.2f MFLOPS, residual %.2e\n",
			res.N, res.N, res.Elapsed, res.MFLOPS(), res.Residual)
	case "lu":
		a := randMat(r, *n)
		for i := range a {
			a[i][i] += float64(*n) // keep it comfortably nonsingular
		}
		res, err := workloads.LU(*n, a, true)
		fail(err)
		fmt.Printf("LU %d×%d (1 node): %v simulated, %d row pivots costing %v\n",
			res.N, res.N, res.Elapsed, res.Swaps, res.PivotTime)
	case "recovery":
		var plan *fault.Plan
		if *faults != "" {
			var err error
			plan, err = fault.Parse(*faults)
			fail(err)
		}
		res, err := workloads.FaultTolerantSAXPY(*dim, *phases, *rows/25+1,
			sim.Duration(pad.Nanoseconds())*sim.Nanosecond,
			sim.Duration(ckpt.Nanoseconds())*sim.Nanosecond, plan)
		fail(err)
		fmt.Printf("Recovery SAXPY: %d nodes × %d phases: %v simulated, bit-correct=%v, goodput %.4g MB/s\n",
			res.Nodes, res.Phases, res.Elapsed, res.Correct, res.GoodputMBps())
		fmt.Printf("checkpoints=%d rollbacks=%d last-recovery=%v\n",
			res.Checkpoints, res.Rollbacks, res.Recovery)
		fmt.Print(res.Faults.Table().String())
		if !res.Correct {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func randMat(r *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = r.NormFloat64()
		}
	}
	return m
}
