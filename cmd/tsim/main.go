// Command tsim is the registry-driven front end to the simulator: it
// lists and runs the paper's experiments (E1..E17, ablations A1..A6)
// and the bundled scientific workloads, sweeps a workload across cube
// dimensions, and fans independent runs across a worker pool — with
// output guaranteed byte-identical to a serial run.
//
// Usage:
//
//	tsim -list
//	tsim -experiment all -parallel 4
//	tsim -experiment E5,E6,E8
//	tsim -workload saxpy  -dim 3 -rows 200
//	tsim -workload matmul -dim 2 -n 64 -json
//	tsim -workload fft    -sweep dim=1..5 -n 1024 -parallel 4
//	tsim -workload pring  -dim 3 -kernel-shards 4
//	tsim -workload recovery -dim 2 -phases 6 -faults seed=7,ber=1e-6,crash=2@12s -ckpt 8s
//	tsim -workload soak -dim 3 -reps 2 -phases 2 -chaos seed=7,dur=60s,crashes=2
//	tsim -bench -short -benchdir . -bench-baseline BENCH_kernel.json -bench-suite-baseline BENCH_suite.json
//	tsim -experiment all -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"time"

	"tseries/internal/core"
	"tseries/internal/fault"
	"tseries/internal/sim"
	"tseries/internal/workloads"
)

func main() {
	// SIGINT cancels the active run through the context path: in-flight
	// kernels tear down at their next event boundary, no partial JSON is
	// emitted, and tsim exits 130 (128+SIGINT) instead of dying
	// mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Stdout, os.Stderr, os.Args[1:]))
}

// interruptExit is the conventional exit status for a SIGINT-terminated
// process (128 + signal number).
const interruptExit = 130

// interrupted reports whether err is the run context's cancellation
// surfacing through a runner.
func interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func run(ctx context.Context, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("tsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments and workloads, then exit")
	experiment := fs.String("experiment", "", `experiment ID, comma-separated IDs, or "all"`)
	workload := fs.String("workload", "", "workload to run (see -list)")
	sweep := fs.String("sweep", "", `sweep the workload across cube sizes, e.g. "dim=2..6"`)
	parallel := fs.Int("parallel", 1, "worker goroutines for multi-run invocations (<1: one per CPU)")
	jsonOut := fs.Bool("json", false, "emit results as JSON")
	benchMode := fs.Bool("bench", false, "measure kernel hot paths and suite wall-clock; write BENCH_kernel.json and BENCH_suite.json")
	benchDir := fs.String("benchdir", ".", "directory for -bench output files")
	benchBaseline := fs.String("bench-baseline", "", "previous BENCH_kernel.json; with -bench, exit 1 if ns/op regressed >25%")
	benchSuiteBaseline := fs.String("bench-suite-baseline", "", "previous BENCH_suite.json; with -bench, exit 1 if a workload's wall-clock grew >3x (recovery-workload gate)")
	short := fs.Bool("short", false, "with -bench, use a reduced measurement budget (CI smoke)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to this file")

	cfg := workloads.DefaultConfig()
	fs.IntVar(&cfg.Dim, "dim", cfg.Dim, "cube dimension (2^dim nodes)")
	fs.IntVar(&cfg.N, "n", cfg.N, "problem size (matrix order, FFT points, grid side, record count)")
	fs.IntVar(&cfg.Rows, "rows", cfg.Rows, "SAXPY rows per node")
	fs.IntVar(&cfg.Iters, "iters", cfg.Iters, "stencil iterations")
	fs.IntVar(&cfg.Reps, "reps", cfg.Reps, "SAXPY sweep repetitions")
	fs.IntVar(&cfg.Phases, "phases", cfg.Phases, "recovery workload phases")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "input generator seed")
	fs.IntVar(&cfg.KernelShards, "kernel-shards", cfg.KernelShards,
		"logical kernel shards per simulation (0/1 = serial); output is byte-identical at any value")
	faults := fs.String("faults", "", "fault plan, e.g. seed=7,ber=1e-6,crash=2@12s,down=0.1@5s+2s,flip=1:4096.3@9s,disk=0.5@14s")
	chaos := fs.String("chaos", "", "randomized chaos recipe for -workload soak, e.g. seed=7,dur=60s,crashes=2,hangs=1")
	ckpt := fs.Duration("ckpt", 0, "periodic checkpoint interval for -workload recovery (0 = initial checkpoint only)")
	pad := fs.Duration("pad", time.Duration(cfg.Pad/sim.Nanosecond)*time.Nanosecond, "per-phase synthetic compute time for -workload recovery")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg.Pad = sim.Duration(pad.Nanoseconds()) * sim.Nanosecond
	cfg.Ckpt = sim.Duration(ckpt.Nanoseconds()) * sim.Nanosecond
	cfg.Ctx = ctx
	if *faults != "" {
		plan, err := fault.Parse(*faults)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		cfg.Faults = plan
	}
	if *chaos != "" {
		recipe, err := fault.ParseChaos(*chaos)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		cfg.Chaos = recipe
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer writeMemProfile(stderr, *memprofile)
	}

	switch {
	case *list:
		printLists(stdout)
		return 0
	case *benchMode:
		return runBench(stdout, stderr, *benchDir, *benchBaseline, *benchSuiteBaseline, *short)
	case *experiment != "":
		// Machine workloads inside experiments partition by geometry (one
		// logical shard per module) and take the flag as their host worker
		// count, so experiment output is byte-identical at every value —
		// which CI verifies.
		return runExperiments(workloads.WithKernelShards(ctx, cfg.KernelShards), stdout, stderr, *experiment, *parallel, *jsonOut)
	case *workload != "":
		return runWorkload(ctx, stdout, stderr, *workload, cfg, *sweep, *parallel, *jsonOut)
	default:
		fs.Usage()
		fmt.Fprintln(stderr)
		printLists(stderr)
		return 2
	}
}

// writeMemProfile snapshots the heap at exit. A failure to write the
// profile must not change the run's exit code, so it only warns.
func writeMemProfile(stderr io.Writer, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return
	}
	defer f.Close()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(stderr, err)
	}
}

// printLists renders the two registries: every experiment with its
// title, and every workload with the Config flags it consumes.
func printLists(w io.Writer) {
	fmt.Fprintln(w, "Experiments (-experiment <id|all>):")
	for _, e := range core.All() {
		fmt.Fprintf(w, "  %-4s %s\n", e.ID, e.Title)
	}
	fmt.Fprintln(w, "\nWorkloads (-workload <name>):")
	for _, r := range workloads.Runners() {
		fmt.Fprintf(w, "  %-9s flags: -%s\n", r.Name(), strings.Join(r.Flags(), " -"))
	}
}

// expJSON is the JSON shape of one experiment result.
type expJSON struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics"`
	Notes   []string           `json:"notes,omitempty"`
	Output  string             `json:"output"`
}

func runExperiments(ctx context.Context, stdout, stderr io.Writer, spec string, parallel int, jsonOut bool) int {
	var exps []core.Experiment
	if spec == "all" {
		exps = core.All()
	} else {
		for _, id := range strings.Split(spec, ",") {
			e, err := core.Find(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			exps = append(exps, e)
		}
	}
	results, err := core.RunSuite(ctx, exps, parallel)
	if err != nil {
		if interrupted(err) {
			fmt.Fprintln(stderr, "tsim: interrupted")
			return interruptExit
		}
		fmt.Fprintln(stderr, err)
		return 1
	}
	if jsonOut {
		out := make([]expJSON, len(results))
		for i, r := range results {
			out[i] = expJSON{ID: r.ID, Title: r.Title, Metrics: r.Metrics, Notes: r.Notes, Output: r.String()}
		}
		return emitJSON(stdout, stderr, out)
	}
	for _, r := range results {
		fmt.Fprintln(stdout, r)
	}
	return 0
}

// pointJSON is the JSON shape of one sweep point.
type pointJSON struct {
	Dim    int               `json:"dim"`
	Report *workloads.Report `json:"report,omitempty"`
	Error  string            `json:"error,omitempty"`
}

func runWorkload(ctx context.Context, stdout, stderr io.Writer, name string, cfg workloads.Config, sweep string, parallel int, jsonOut bool) int {
	if sweep != "" {
		var lo, hi int
		if n, err := fmt.Sscanf(sweep, "dim=%d..%d", &lo, &hi); n != 2 || err != nil || lo > hi {
			fmt.Fprintf(stderr, "tsim: bad -sweep %q (want dim=LO..HI)\n", sweep)
			return 2
		}
		dims := make([]int, 0, hi-lo+1)
		for d := lo; d <= hi; d++ {
			dims = append(dims, d)
		}
		points, err := core.RunSweep(ctx, name, cfg, dims, parallel)
		if err != nil {
			if interrupted(err) {
				fmt.Fprintln(stderr, "tsim: interrupted")
				return interruptExit
			}
			fmt.Fprintln(stderr, err)
			return 2
		}
		failed := 0
		if jsonOut {
			out := make([]pointJSON, len(points))
			for i, pt := range points {
				out[i] = pointJSON{Dim: pt.Dim}
				if pt.Err != nil {
					out[i].Error = pt.Err.Error()
					failed++
				} else {
					rep := pt.Report
					out[i].Report = &rep
				}
			}
			if code := emitJSON(stdout, stderr, out); code != 0 {
				return code
			}
		} else {
			for _, pt := range points {
				if pt.Err != nil {
					fmt.Fprintf(stdout, "dim=%d: error: %v\n", pt.Dim, pt.Err)
					failed++
					continue
				}
				fmt.Fprintf(stdout, "dim=%d: %s\n", pt.Dim, pt.Report)
			}
		}
		if failed == len(points) {
			return 1
		}
		return 0
	}
	r, err := workloads.Get(name)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	rep, err := r.Run(cfg)
	if err != nil {
		if interrupted(err) {
			fmt.Fprintln(stderr, "tsim: interrupted")
			return interruptExit
		}
		fmt.Fprintln(stderr, err)
		return 1
	}
	if jsonOut {
		return emitJSON(stdout, stderr, rep)
	}
	fmt.Fprintln(stdout, rep)
	return 0
}

func emitJSON(stdout, stderr io.Writer, v interface{}) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}
