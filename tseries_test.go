package tseries

import (
	"context"

	"testing"

	"tseries/internal/comm"
	"tseries/internal/fparith"
	"tseries/internal/sim"
	"tseries/internal/workloads"
)

func TestPublicFacade(t *testing.T) {
	s, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 4 {
		t.Fatalf("nodes = %d", s.Nodes())
	}
	sum := make([]float64, 4)
	s.SPMD(func(p *sim.Proc, e *comm.Endpoint) {
		out, err := e.AllReduceF64(p, 7, comm.AddF64, []fparith.F64{fparith.FromInt64(2)})
		if err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		sum[e.ID()] = out[0].Float64()
	})
	for _, v := range sum {
		if v != 8 {
			t.Fatalf("sum = %v", sum)
		}
	}
}

func TestSpecForPublic(t *testing.T) {
	s, err := SpecFor(12)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 4096 {
		t.Fatalf("12-cube nodes = %d", s.Nodes)
	}
	if _, err := SpecFor(20); err == nil {
		t.Fatal("20-cube accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "A1", "A2", "A3", "A4", "A5", "A6"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from the registry", want)
		}
	}
	if _, err := RunExperiment(context.Background(), "E0"); err == nil {
		t.Fatal("unknown experiment ran")
	}
}

func TestQuickstartExperiment(t *testing.T) {
	r, err := RunExperiment(context.Background(), "E3")
	if err != nil {
		t.Fatal(err)
	}
	if r.Table == nil {
		t.Fatal("no table")
	}
}

func TestFaultPlanSAXPYSmoke(t *testing.T) {
	// A small distributed SAXPY under a nonzero bit-error rate must
	// finish bit-correct: the link layer detects every injected error by
	// checksum and corrects it by retransmission.
	plan, err := ParseFaultPlan("seed=11,ber=1e-6")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 11 || plan.BER != 1e-6 {
		t.Fatalf("plan parsed wrong: %+v", plan)
	}
	res, err := workloads.FaultTolerantSAXPY(context.Background(), 2, 3, 2, 0, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("SAXPY under BER 1e-6 not bit-correct")
	}
	if plan.FramesCorrupted == 0 {
		t.Fatal("plan injected nothing — the smoke test is vacuous")
	}
	if res.Faults.Detected != res.Faults.FramesCorrupted || res.Faults.Undetected != 0 {
		t.Fatalf("error accounting: %+v", res.Faults)
	}
	if res.Faults.Retransmits < res.Faults.Detected {
		t.Fatalf("detected %d but retransmitted only %d", res.Faults.Detected, res.Faults.Retransmits)
	}
	if res.Rollbacks != 0 {
		t.Fatal("bit errors alone forced a rollback")
	}
}

// TestParallelKernelFacade drives the conservative parallel kernel
// through the public surface: the partition plan is pure geometry, and
// RunWorkload reports are byte-equal at every KernelShards value.
func TestParallelKernelFacade(t *testing.T) {
	plan, err := PlanPartition(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards != 4 || plan.Modules != 8 || plan.Lookahead <= 0 {
		t.Fatalf("unexpected plan: %+v", plan)
	}

	cfg := DefaultWorkloadConfig()
	cfg.Dim, cfg.Rows, cfg.Iters = 3, 25, 2
	serial, err := RunWorkload(context.Background(), "pring", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Kernel.Windows == 0 || len(serial.Kernel.Shards) != 8 {
		t.Fatalf("pring should report sharded kernel stats: %+v", serial.Kernel)
	}
	cfg.KernelShards = 4
	sharded, err := RunWorkload(context.Background(), "pring", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() || serial.Kernel.String() != sharded.Kernel.String() {
		t.Fatalf("KernelShards changed the report:\nserial:  %s\nsharded: %s", serial, sharded)
	}
}
