package tseries

import (
	"testing"

	"tseries/internal/comm"
	"tseries/internal/fparith"
	"tseries/internal/sim"
)

func TestPublicFacade(t *testing.T) {
	s, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 4 {
		t.Fatalf("nodes = %d", s.Nodes())
	}
	sum := make([]float64, 4)
	s.SPMD(func(p *sim.Proc, e *comm.Endpoint) {
		out, err := e.AllReduceF64(p, 7, comm.AddF64, []fparith.F64{fparith.FromInt64(2)})
		if err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		sum[e.ID()] = out[0].Float64()
	})
	for _, v := range sum {
		if v != 8 {
			t.Fatalf("sum = %v", sum)
		}
	}
}

func TestSpecForPublic(t *testing.T) {
	s, err := SpecFor(12)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 4096 {
		t.Fatalf("12-cube nodes = %d", s.Nodes)
	}
	if _, err := SpecFor(20); err == nil {
		t.Fatal("20-cube accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "A1", "A2", "A3", "A4", "A5", "A6"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from the registry", want)
		}
	}
	if _, err := RunExperiment("E0"); err == nil {
		t.Fatal("unknown experiment ran")
	}
}

func TestQuickstartExperiment(t *testing.T) {
	r, err := RunExperiment("E3")
	if err != nil {
		t.Fatal(err)
	}
	if r.Table == nil {
		t.Fatal("no table")
	}
}
