// Matmul: the paper's balance rule in action. Row-broadcast matrix
// multiply performs 2N/P floating-point operations per 64-bit word sent
// over a link, and §II says a node needs ~130 operations per transferred
// word to stay busy. This example sweeps N and P and shows exactly where
// distributing the multiply starts to pay on 0.5 MB/s links — and where
// it doesn't.
package main

import (
	"context"

	"fmt"
	"log"
	"math/rand"

	"tseries/internal/stats"
	"tseries/internal/workloads"
)

func main() {
	r := rand.New(rand.NewSource(3))
	table := stats.NewTable("Row-broadcast matmul: simulated time vs nodes",
		"N", "nodes", "flops/word", "time", "MFLOPS", "vs 1 node")
	for _, n := range []int{32, 64, 128} {
		a := randMat(r, n)
		b := randMat(r, n)
		var base float64
		for _, dim := range []int{0, 1, 2} {
			procs := 1 << uint(dim)
			if n%procs != 0 {
				continue
			}
			res, err := workloads.DistributedMatMul(context.Background(), dim, n, a, b)
			if err != nil {
				log.Fatal(err)
			}
			if dim == 0 {
				base = float64(res.Elapsed)
			}
			ratio := base / float64(res.Elapsed)
			table.Add(n, procs, 2*n/procs, res.Elapsed.String(), res.MFLOPS(), ratio)
		}
	}
	fmt.Println(table)
	fmt.Println("flops/word is the work available to hide each transferred operand;")
	fmt.Println("the paper's rule of thumb says ~130 is needed — small matrices on")
	fmt.Println("many nodes are communication-bound, exactly as measured above.")

	// Verify the largest distributed run against a host reference.
	n := 128
	a, b := randMat(r, n), randMat(r, n)
	res, err := workloads.DistributedMatMul(context.Background(), 1, n, a, b)
	if err != nil {
		log.Fatal(err)
	}
	want := workloads.HostMatMul(n, a, b)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := res.C[i][j] - want[i][j]
			if d > 1e-8 || d < -1e-8 {
				log.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	fmt.Println("\n128×128 distributed result verified against host arithmetic: ok")
}

func randMat(r *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = r.Float64()*2 - 1
		}
	}
	return m
}
