// Boot: the front-end view of the machine. A host computer loads one
// SPMD assembly program into all sixteen nodes of a two-module machine
// through the system boards, starts every control processor, waits, and
// collects the per-node results — management traffic riding the same
// 0.577 MB/s links as everything else.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"tseries/internal/cp"
	"tseries/internal/frontend"
	"tseries/internal/machine"
	"tseries/internal/sim"
)

func main() {
	k := sim.NewKernel()
	m, err := machine.New(k, 4) // 16 nodes, 2 modules
	if err != nil {
		log.Fatal(err)
	}
	fe := frontend.New(m)

	// The SPMD program: read my node id and the node count from the
	// boot words, compute 1000*id + count, store at the result word.
	const resultWord = 0x7F10
	prog, err := cp.Assemble(`
		ldc 0x1FC00   ; NodeIDWord*4
		ldnl 0
		ldc 1000
		mul
		stl 0
		ldc 0x1FC04   ; NodesWord*4
		ldnl 0
		ldl 0
		add
		ldc 0x1FC40   ; resultWord*4
		stnl 0
		stopp
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d bytes of control-processor code\n", len(prog))

	k.Go("frontend", func(p *sim.Proc) {
		t0 := p.Now()
		if err := fe.LoadAll(p, prog); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-10v loaded onto 16 nodes (2 modules in parallel over their threads)\n", p.Now().Sub(t0))

		procs := fe.StartAll()
		for _, pr := range procs {
			p.Join(pr)
		}
		fmt.Printf("t=%-10v all control processors halted\n", p.Now().Sub(t0))

		results, err := fe.Collect(p, resultWord*4, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-10v results collected:\n  ", p.Now().Sub(t0))
		for id, raw := range results {
			v := int32(binary.LittleEndian.Uint32(raw))
			if v != int32(1000*id+16) {
				log.Fatalf("node %d computed %d", id, v)
			}
			fmt.Printf("%d ", v)
		}
		fmt.Println("\nok")
	})
	k.Run(0)
}
