// Quickstart: build a one-module T Series (eight nodes), run a SAXPY on
// every node's vector unit, and combine the partial dot products with a
// hypercube all-reduce — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"tseries"
	"tseries/internal/comm"
	"tseries/internal/fparith"
	"tseries/internal/fpu"
	"tseries/internal/memory"
	"tseries/internal/sim"
)

func main() {
	// One module: a 3-cube of eight 16-MFLOPS nodes.
	sys, err := tseries.New(3)
	if err != nil {
		log.Fatal(err)
	}
	spec, _ := tseries.SpecFor(3)
	fmt.Printf("machine: %s\n\n", spec)

	// Stage operands: on every node, x[i] = id+1 in bank A (row 0) and
	// y[i] = 2 in bank B (row 300).
	for id := 0; id < sys.Nodes(); id++ {
		mem := sys.Node(id).Mem
		for i := 0; i < memory.F64PerRow; i++ {
			mem.PokeF64(i, fparith.FromFloat64(float64(id+1)))
			mem.PokeF64(300*memory.F64PerRow+i, fparith.FromFloat64(2))
		}
	}

	// SPMD program: each node runs z = 3·x + y on its vector unit, dots
	// z with y, then all nodes sum their dot products over the cube.
	results := make([]float64, sys.Nodes())
	elapsed := sys.SPMD(func(p *sim.Proc, e *comm.Endpoint) {
		nd := e.Node()
		if _, err := nd.RunForm(p, fpu.Op{
			Form: fpu.SAXPY, Prec: fpu.P64,
			A: fparith.FromFloat64(3), X: 0, Y: 300, Z: 301,
		}); err != nil {
			log.Fatal(err)
		}
		dot, err := nd.RunForm(p, fpu.Op{Form: fpu.Dot, Prec: fpu.P64, X: 0, Y: 301})
		if err != nil {
			log.Fatal(err)
		}
		total, err := e.AllReduceF64(p, 10, comm.AddF64, []fparith.F64{dot.Scalar})
		if err != nil {
			log.Fatal(err)
		}
		results[e.ID()] = total[0].Float64()
	})

	// Every node holds the same global sum:
	//   Σ_id 128 · (id+1) · (3(id+1)+2)
	var want float64
	for id := 0; id < 8; id++ {
		x := float64(id + 1)
		want += 128 * x * (3*x + 2)
	}
	fmt.Printf("global dot product: %.0f (expected %.0f) on all %d nodes\n",
		results[0], want, sys.Nodes())
	fmt.Printf("simulated time:     %v (vector work + 3 all-reduce rounds on 0.577 MB/s links)\n", elapsed)
	for id, v := range results {
		if v != want {
			log.Fatalf("node %d disagrees: %g", id, v)
		}
	}
	fmt.Println("ok")
}
