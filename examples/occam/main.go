// Occam: the paper's programming model. Two simulated nodes each run an
// Occam program; a producer pipeline on node 0 streams values through a
// hardware link to node 1, whose program drives the vector unit via the
// SAXPY/DOT builtins and reports over a second link channel.
package main

import (
	"fmt"
	"log"
	"os"

	"tseries/internal/fparith"
	"tseries/internal/link"
	"tseries/internal/memory"
	"tseries/internal/node"
	"tseries/internal/occam"
	"tseries/internal/sim"
)

const producerSrc = `
-- Node 0: generate scale factors and send them downstream.
PROC producer(CHAN out)
  SEQ i = 1 FOR 4
    out ! i
`

const workerSrc = `
-- Node 1: for each incoming factor a, run z = a*x + y on the vector
-- unit, dot the result with y, and send the dot product back.
PROC worker(CHAN in, CHAN result)
  INT a:
  REAL64 d, af:
  SEQ j = 0 FOR 4
    SEQ
      in ? a
      af := 1.0
      SEQ k = 1 FOR a
        af := af + 1.0    -- af = a+1 … demonstrate INT control, REAL64 data
      SAXPY(af, 0, 300, 301)
      DOT(301, 300, d)
      result ! d
`

func main() {
	k := sim.NewKernel()
	n0 := node.New(k, 0)
	n1 := node.New(k, 1)
	// Wire two channels between the nodes: factors on link0/sub0,
	// results on link1/sub0.
	if err := link.Connect(n0.Sublink(0), n1.Sublink(0)); err != nil {
		log.Fatal(err)
	}
	if err := link.Connect(n0.Sublink(4), n1.Sublink(4)); err != nil {
		log.Fatal(err)
	}

	// Stage vector operands on node 1: x = 1s (bank A), y = 2s (bank B).
	for i := 0; i < memory.F64PerRow; i++ {
		n1.Mem.PokeF64(i, fparith.FromFloat64(1))
		n1.Mem.PokeF64(300*memory.F64PerRow+i, fparith.FromFloat64(2))
	}

	prodProg, err := occam.Parse(producerSrc)
	if err != nil {
		log.Fatal(err)
	}
	workProg, err := occam.Parse(workerSrc)
	if err != nil {
		log.Fatal(err)
	}
	ip0 := occam.New(k, prodProg, n0)
	ip1 := occam.New(k, workProg, n1)
	ip0.Out, ip1.Out = os.Stdout, os.Stdout

	if _, err := ip0.Start("producer", occam.WrapSublink(n0.Sublink(0))); err != nil {
		log.Fatal(err)
	}
	if _, err := ip1.Start("worker",
		occam.WrapSublink(n1.Sublink(0)), occam.WrapSublink(n1.Sublink(4))); err != nil {
		log.Fatal(err)
	}

	// The host collects the four dot products from node 0's side of the
	// result link.
	var got []float64
	k.Go("collector", func(p *sim.Proc) {
		ch := occam.WrapSublink(n0.Sublink(4))
		for i := 0; i < 4; i++ {
			v, err := occamRecvReal(p, ch)
			if err != nil {
				log.Fatal(err)
			}
			got = append(got, v)
		}
	})
	end := k.Run(0)
	if ip0.Err() != nil || ip1.Err() != nil {
		log.Fatal(ip0.Err(), ip1.Err())
	}

	fmt.Println("dot products received from the worker node:")
	for i, v := range got {
		a := float64(i + 2) // af = a+1 for a = 1..4
		want := 128 * 2 * (a + 2)
		status := "ok"
		if v != want {
			status = fmt.Sprintf("WRONG (want %g)", want)
		}
		fmt.Printf("  a+1=%g → dot(z,y) = %6.0f  %s\n", a, v, status)
	}
	fmt.Printf("simulated time: %v (link DMA startups dominate the tiny messages)\n", end)
}

// occamRecvReal receives one REAL64 from an Occam channel on a host proc.
func occamRecvReal(p *sim.Proc, ch occam.Channel) (float64, error) {
	v, err := occam.RecvValue(p, ch)
	if err != nil {
		return 0, err
	}
	f, ok := v.(fparith.F64)
	if !ok {
		return 0, fmt.Errorf("expected REAL64, got %T", v)
	}
	return f.Float64(), nil
}
