// Assembly: programming the control processor directly. The node's CP is
// a transputer-style stack machine with one-byte prefix-encoded
// instructions; this example assembles a program that computes Fibonacci
// numbers, stores them off-chip, triggers a vector form through a
// descriptor, and reports the measured instruction rate (7.5 MIPS) —
// then shows the disassembler output.
package main

import (
	"fmt"
	"log"

	"tseries/internal/cp"
	"tseries/internal/fparith"
	"tseries/internal/fpu"
	"tseries/internal/memory"
	"tseries/internal/node"
	"tseries/internal/sim"
)

const codeBase = 0x10000
const wsBase = 0x8000 // word index

const fibSrc = `
	; Fibonacci: store fib(0..19) at off-chip word address 0x30000.
	ldc 0
	stl 0        ; a = 0
	ldc 1
	stl 1        ; b = 1
	ldc 20
	stl 2        ; remaining
	ldc 0x30000
	stl 3        ; cursor (byte address)
loop:
	ldl 2
	cj done
	ldl 0
	ldl 3
	stnl 0       ; mem[cursor] = a
	ldl 0
	ldl 1
	add
	stl 4        ; t = a + b
	ldl 1
	stl 0        ; a = b
	ldl 4
	stl 1        ; b = t
	ldl 3
	adc 4
	stl 3
	ldl 2
	adc -1
	stl 2
	j loop
done:
	stopp
`

func main() {
	k := sim.NewKernel()
	nd := node.New(k, 0)

	code, err := cp.Assemble(fibSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instruction bytes; disassembly of the loop head:\n", len(code))
	dis := cp.Disassemble(code)
	for i, line := range splitLines(dis) {
		if i >= 10 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + line)
	}

	nd.CP.LoadProgram(codeBase, code)
	var executed int64
	k.Go("cp", func(p *sim.Proc) {
		n, err := nd.CP.Run(p, codeBase, wsBase)
		if err != nil {
			log.Fatal(err)
		}
		executed = n
	})
	end := k.Run(0)

	fmt.Printf("\nfib(0..19) from off-chip memory:")
	want := []int32{0, 1, 1, 2, 3, 5}
	for i := 0; i < 20; i++ {
		v := int32(nd.Mem.PeekWord(0x30000/4 + i))
		fmt.Printf(" %d", v)
		if i < len(want) && v != want[i] {
			log.Fatalf("fib(%d) = %d", i, v)
		}
	}
	mips := float64(executed) / sim.Duration(end).Seconds() / 1e6
	fmt.Printf("\n%d instructions in %v — %.2f MIPS (stnl port traffic slows the 7.5 MIPS core)\n\n",
		executed, end, mips)

	// Drive the vector unit from assembly: descriptor + vform/vwait.
	for i := 0; i < memory.F64PerRow; i++ {
		nd.Mem.PokeF64(i, fparith.FromInt64(int64(i)))                 // row 0 (bank A)
		nd.Mem.PokeF64(300*memory.F64PerRow+i, fparith.FromInt64(100)) // row 300 (bank B)
	}
	vec, err := cp.Assemble(cp.ProgVectorDriver(0x20000, int(fpu.VAdd), 0, 300, 301, 0))
	if err != nil {
		log.Fatal(err)
	}
	nd.CP.LoadProgram(codeBase+0x1000, vec)
	k.Go("cp2", func(p *sim.Proc) {
		if _, err := nd.CP.Run(p, codeBase+0x1000, wsBase+0x100); err != nil {
			log.Fatal(err)
		}
	})
	k.Run(0)
	fmt.Printf("vector VADD driven from assembly: z[5] = %v, z[127] = %v (status %d)\n",
		nd.Mem.PeekF64(301*memory.F64PerRow+5).Float64(),
		nd.Mem.PeekF64(301*memory.F64PerRow+127).Float64(),
		int32(nd.Mem.PeekWord(wsBase+0x100)))
	fmt.Println("ok")
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
