// Checkpoint: the system disk's primary function — memory snapshots for
// error recovery. A two-module machine runs an iterative computation
// with periodic snapshots; a DRAM fault (parity error) strikes mid-run;
// the machine restores the last checkpoint, backs the snapshot up over
// the system ring, and finishes with the correct answer.
package main

import (
	"fmt"
	"log"

	"tseries"
	"tseries/internal/fparith"
	"tseries/internal/fpu"
	"tseries/internal/memory"
	"tseries/internal/module"
	"tseries/internal/sim"
)

func main() {
	sys, err := tseries.New(4) // 16 nodes, 2 modules, system ring
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %d nodes, %d modules with disks on a system ring\n\n",
		sys.Nodes(), len(sys.Modules()))

	// The "computation": every node repeatedly doubles a row vector.
	for id := 0; id < sys.Nodes(); id++ {
		mem := sys.Node(id).Mem
		for i := 0; i < memory.F64PerRow; i++ {
			mem.PokeF64(300*memory.F64PerRow+i, fparith.FromFloat64(1))
		}
	}
	step := func(p *sim.Proc) {
		for id := 0; id < sys.Nodes(); id++ {
			if _, err := sys.Node(id).RunForm(p, fpu.Op{
				Form: fpu.VSMul, Prec: fpu.P64,
				A: fparith.FromFloat64(2), X: 300, Z: 300,
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	check := func(want float64) bool {
		for id := 0; id < sys.Nodes(); id++ {
			if sys.Node(id).Mem.PeekF64(300*memory.F64PerRow).Float64() != want {
				return false
			}
		}
		return true
	}

	var snaps []*module.Snapshot
	sys.Go("driver", func(p *sim.Proc) {
		// Three steps of work, then a checkpoint.
		for i := 0; i < 3; i++ {
			step(p)
		}
		fmt.Printf("t=%-12v checkpoint after 3 steps (value 8)\n", p.Now())
		var err error
		snaps, err = sys.Checkpoint(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-12v snapshot complete (≈15 s: 8 MB/module over the system thread)\n", p.Now())

		// Two more steps… then a memory fault.
		step(p)
		step(p)
		sys.Node(5).Mem.FlipBit(300*memory.RowBytes+4, 1)
		if _, err := sys.Node(5).Mem.ReadWord(p, 300*memory.RowBytes/4+1); err != nil {
			fmt.Printf("t=%-12v FAULT detected on node 5: %v\n", p.Now(), err)
		}

		// Recovery: restore the checkpoint and redo the lost steps.
		if err := sys.Restore(p, snaps); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-12v restored checkpoint (all 16 nodes back at value 8)\n", p.Now())
		if !check(8) {
			log.Fatal("restore did not recover the checkpointed state")
		}
		step(p)
		step(p)
		fmt.Printf("t=%-12v recomputed to value 32\n", p.Now())

		// Back the snapshot up to the ring neighbor's disk.
		if err := sys.Modules()[0].BackupLastSnapshot(p); err != nil {
			log.Fatal(err)
		}
		p.Wait(sim.Second)
	})
	sys.Run(0)

	if !check(32) {
		log.Fatal("final state wrong")
	}
	if !sys.Modules()[1].HasBackupOf(0, snaps[0].ID, 8) {
		log.Fatal("ring backup missing")
	}
	fmt.Println("\nfinal value 32 on every node; module 0's snapshot backed up on module 1's disk: ok")
}
