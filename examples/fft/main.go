// FFT: Figure 3's butterfly mapping. A 1024-point radix-2 FFT runs on
// 1..16 nodes; every inter-node butterfly exchanges with a direct cube
// neighbor, so communication stages grow as log₂P while local work
// shrinks as 1/P. The example prints the sweep and validates the
// transform against an O(N²) host DFT.
package main

import (
	"context"

	"fmt"
	"log"
	"math"
	"math/cmplx"

	"tseries/internal/stats"
	"tseries/internal/workloads"
)

func main() {
	const n = 1024
	in := make([]complex128, n)
	for i := range in {
		// A two-tone test signal.
		in[i] = complex(
			math.Sin(2*math.Pi*17*float64(i)/n)+0.5*math.Sin(2*math.Pi*111*float64(i)/n),
			0)
	}
	want := workloads.HostDFT(in)

	table := stats.NewTable("1024-point FFT on the butterfly mapping",
		"nodes", "exchange stages", "local stages", "simulated time", "max |err|")
	for _, dim := range []int{0, 1, 2, 3, 4} {
		res, err := workloads.DistributedFFT(context.Background(), dim, in)
		if err != nil {
			log.Fatal(err)
		}
		maxErr := 0.0
		for i := range want {
			if e := cmplx.Abs(res.Out[i] - want[i]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 1e-7 {
			log.Fatalf("FFT wrong on %d nodes: err %g", res.Nodes, maxErr)
		}
		localStages := 10 - dim // log2(1024) total stages
		table.Add(res.Nodes, dim, localStages, res.Elapsed.String(), maxErr)
	}
	fmt.Println(table)

	// Show the two tones landed in the right bins.
	res, _ := workloads.DistributedFFT(context.Background(), 3, in)
	fmt.Println("spectral peaks (8-node run):")
	for _, bin := range []int{17, 111} {
		fmt.Printf("  bin %4d: |X| = %.1f\n", bin, cmplx.Abs(res.Out[bin]))
	}
	fmt.Println("ok")
}
