module tseries

go 1.22
