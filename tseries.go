// Package tseries is a deterministic simulator of the FPS T Series, the
// homogeneous vector supercomputer of Gustafson, Hawkinson and Scott
// (ICPP 1986): binary n-cube message passing between nodes that combine
// a transputer-style control processor, 1 MB of dual-ported memory, a
// pipelined 16 MFLOPS vector arithmetic unit, and four multiplexed
// serial links; eight nodes plus a system board and disk form a module,
// modules pair into cabinets, cabinets cable into cubes of up to
// dimension 14.
//
// This package is the public facade. Construct a System, write programs
// either as Go functions running as simulated processes or in the
// bundled Occam subset, and read results and timings off the simulated
// clock. The experiment harness (Experiments, RunExperiment) regenerates
// every quantitative claim and figure of the paper; `go test -bench .`
// and cmd/tbench drive it.
package tseries

import (
	"context"

	"tseries/internal/core"
	"tseries/internal/fault"
	"tseries/internal/machine"
	"tseries/internal/sim"
	"tseries/internal/stats"
	"tseries/internal/workloads"
)

// System is a complete, runnable T Series configuration.
type System = core.System

// Spec is a derived configuration table row.
type Spec = machine.Spec

// Result is one experiment's reproduction output.
type Result = core.Result

// Experiment regenerates one table or figure of the paper.
type Experiment = core.Experiment

// FaultPlan is a deterministic, seed-driven fault scenario: a link
// bit-error rate plus timed events (node crashes, link outages, DRAM
// bit flips, disk corruption).
type FaultPlan = fault.Plan

// FaultEvent is one timed fault in a plan.
type FaultEvent = fault.Event

// Supervisor is the recovery orchestrator: it checkpoints the machine
// and replays supervised workloads after unrecoverable faults.
type Supervisor = machine.Supervisor

// FaultCounters aggregates detected/corrected/uncorrected error,
// retransmit, detour, and rollback accounting.
type FaultCounters = stats.FaultCounters

// ParseFaultPlan parses the `tsim -faults` specification syntax, e.g.
// "seed=7,ber=1e-6,crash=2@12s,down=0.1@5s+2s".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// New builds a 2^dim-node machine with its hypercube network, modules,
// system ring and disks. Simulable dimensions are 0..8; use SpecFor for
// the paper's larger configurations, whose properties derive from module
// homogeneity without instantiation.
func New(dim int) (*System, error) { return core.NewSystem(dim) }

// SpecFor derives the specification of any configuration up to the
// 14-cube wiring maximum.
func SpecFor(dim int) (Spec, error) { return machine.SpecFor(dim) }

// WorkloadConfig carries every knob a workload can consume; see
// DefaultWorkloadConfig for the starting values. Its KernelShards field
// turns on the conservative parallel kernel: shard-native workloads
// execute their logical partition on up to that many host workers, with
// reports byte-identical to a serial run at every value.
type WorkloadConfig = workloads.Config

// PartitionPlan is the logical shard map for a conservative parallel
// run of one machine: module→shard assignment plus the cross-shard
// lookahead the synchronization windows may use. Plans are pure
// geometry — host-independent — so equal plans imply equal results.
type PartitionPlan = machine.PartitionPlan

// PlanPartition derives the module→shard map for a dim-cube split into
// at most wantShards shards (clamped to the module count).
func PlanPartition(dim, wantShards int) (*PartitionPlan, error) {
	return machine.PlanPartition(dim, wantShards)
}

// ShardStats is one kernel shard's execution summary in a sharded
// KernelStats snapshot.
type ShardStats = sim.ShardStats

// WorkloadReport is the uniform outcome of one workload run.
type WorkloadReport = workloads.Report

// KernelStats is the simulation engine's self-measurement: events
// executed, processes spawned/finished, park/unpark counts, named
// counters, and per-resource utilization.
type KernelStats = sim.Stats

// SweepPoint is one cube dimension of a workload sweep.
type SweepPoint = core.SweepPoint

// Experiments lists the full reproduction suite (E1..E17 plus the
// ablations A1..A6) in paper order.
func Experiments() []Experiment { return core.All() }

// RunExperiment runs one experiment by ID ("E1".."E17", "A1".."A6").
// Canceling ctx aborts the experiment at its kernel's next event
// boundary and returns the context's error.
func RunExperiment(ctx context.Context, id string) (*Result, error) {
	e, err := core.Find(id)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx)
}

// RunSuite runs the given experiments across `workers` host goroutines
// (every experiment builds its own System, so runs are independent);
// results come back in suite order, byte-identical to a serial run.
func RunSuite(ctx context.Context, exps []Experiment, workers int) ([]*Result, error) {
	return core.RunSuite(ctx, exps, workers)
}

// Workloads lists the registered workload names.
func Workloads() []string { return workloads.Names() }

// DefaultWorkloadConfig returns the values the tsim command starts from.
func DefaultWorkloadConfig() WorkloadConfig { return workloads.DefaultConfig() }

// RunWorkload runs one registered workload under the given Config.
// Canceling ctx aborts the run at its kernel's next event boundary.
func RunWorkload(ctx context.Context, name string, cfg WorkloadConfig) (WorkloadReport, error) {
	r, err := workloads.Get(name)
	if err != nil {
		return WorkloadReport{}, err
	}
	cfg.Ctx = ctx
	return r.Run(cfg)
}

// RunSweep runs a workload at each cube dimension in dims across
// `workers` goroutines, in deterministic dims order.
func RunSweep(ctx context.Context, name string, base WorkloadConfig, dims []int, workers int) ([]SweepPoint, error) {
	return core.RunSweep(ctx, name, base, dims, workers)
}
